//! Householder QR factorization, orthonormalization and least squares.
//!
//! FEAST needs two things from QR: an orthonormal basis of the contour
//! projector's range (subspace iteration hygiene) and least-squares
//! pseudo-inverses for the tall-skinny mode matrices `U` when assembling
//! boundary self-energies from an incomplete (annulus-only) mode set.
//!
//! # Blocked compact-WY factorization
//!
//! Above a measured crossover (~160 columns square, ~128 for tall-skinny
//! m ≥ 4n inputs; higher than the LU stack's 96 because the QR panel's
//! serial reflector dots amortize more slowly than LU's rank-1 axpys),
//! the factorization runs **blocked right-looking** on the gemm/trsm
//! substrate: 48-wide panels are factored **recursively**
//! (RGEQR3-style — [`factor_panel_recursive`] halves each panel, applies
//! the left half's aggregated reflector to the right half through WY
//! gemms, and assembles the panel `T` from the halves' `T`s, so only the
//! 24-column leaves run the serial reflector loop), and the panel's
//! reflectors come out already aggregated into the compact-WY form
//!
//! ```text
//! Q_panel = H_0·H_1···H_{kb−1} = I − V·T·Vᴴ
//! ```
//!
//! with `V` the unit-lower-trapezoidal reflector matrix and `T` a small
//! upper-triangular factor. `T` is recovered from the Gram matrix
//! `S = VᴴV` through the identity `T⁻¹ = diag(1/τ) + strict_upper(S)` —
//! one [`crate::trsm`] solve of the identity against that triangle (with a
//! scalar recurrence fallback when a τ vanishes, where the inverse
//! formulation breaks down). The trailing update is then two gemms around
//! an in-place [`crate::trmm`] (`T` is upper triangular — the square gemm
//! the `T`-transform used to pay is halved and its staging buffer gone):
//!
//! ```text
//! W = Vᴴ·B,    W ← Tᴴ·W (ztrmm),    B ← B − V·W
//! ```
//!
//! so the bulk of the `8·(m·n² − n³/3)` flops runs on the dispatched
//! packed microkernel. The per-panel `T` factors are retained in the returned
//! [`QrFactors`], so `Q`-applications (`apply_qh`, `q_thin`, least
//! squares) replay the same blocked WY updates instead of one reflector
//! at a time, and the `R` back-substitution is a blocked [`crate::trsm`]
//! sweep. The unblocked path is kept as a runtime A/B baseline behind
//! [`force_unblocked_qr`] (used by `bench_qr_json`), and every entry
//! point has a workspace-borrowing form ([`qr_factor_ws`],
//! [`QrFactors::apply_qh_into`], [`QrFactors::least_squares_into`],
//! [`QrFactors::q_thin_into`]) so warm factor/apply loops perform zero
//! fresh matrix allocations.

use crate::complex::{c64, Complex64};
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm, gemm_into_unc, Op};
use crate::trmm::trmm_unc;
use crate::trsm::{trsm_unc, Diag, Side, UpLo};
use crate::workspace::Workspace;
use crate::zmat::{ZMat, ZMatMut, ZMatRef};
use std::sync::atomic::{AtomicBool, Ordering};

/// Panel width of the blocked factorization (wider than the LU/LDL
/// 32-panels: the QR panel amortizes its scalar dot products over two
/// trailing gemms, and 48 measured fastest on this container at 256–512).
const NB: usize = 48;

/// Sub-panel width below which the recursive panel factorization stops
/// splitting and runs the scalar reflector loop. One split of the
/// 48-wide panel (24-column leaves) measured fastest on this container:
/// the halves' WY applies and the `V₁ᴴV₂` cross product stay k = 24 deep
/// (the packed gemm's tall-panel regime), while deeper splits fragment
/// them into k ≤ 12 products that are overhead-bound.
const REC_BASE: usize = 24;

/// Smallest column count that takes the blocked path for general
/// shapes. The recursive sub-panel factorization plus the 4-lane
/// conjugated-dot direct gemm path lowered the measured square
/// break-even on this container from the pre-recursion n ≈ 200 to
/// ≈ 160 (still above the LU stack's 96 because the leaf reflector
/// dots remain serial).
const BLOCK_MIN: usize = 160;

/// Smallest column count that takes the blocked path for tall-skinny
/// inputs (m ≥ 4n, the FEAST `U⁺` least-squares shape): the recursion's
/// WY gemms amortize over the long columns much sooner — measured
/// 1.3–1.7× over unblocked at 528×128/1040×128, parity at 784×96.
const BLOCK_MIN_TALL: usize = 128;

/// A/B baseline switch: `true` forces every QR factorization (and the
/// blocked Hessenberg reduction in [`crate::eig`]) through the unblocked
/// scalar path regardless of size.
static FORCE_UNBLOCKED: AtomicBool = AtomicBool::new(false);

/// Routes QR factorizations (and the Hessenberg reduction) through the
/// unblocked baseline (or back). Benchmark-only: `bench_qr_json` uses it
/// to measure blocked-vs-unblocked speedups end to end in one process.
pub fn force_unblocked_qr(on: bool) {
    FORCE_UNBLOCKED.store(on, Ordering::Relaxed);
}

/// Whether the unblocked baseline is currently forced.
pub(crate) fn qr_unblocked_forced() -> bool {
    FORCE_UNBLOCKED.load(Ordering::Relaxed)
}

/// Packed Householder QR factors of an m×n matrix (m ≥ n).
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Reflectors below the diagonal, R on and above.
    packed: ZMat,
    /// Scalar reflector coefficients τ (n×1 column).
    tau: ZMat,
    /// Compact-WY `T` factors, one `kb×kb` upper-triangular block per
    /// panel at `[0..kb, k0..k0+kb]`; empty for unblocked factors.
    ts: ZMat,
}

/// Computes the Householder QR factorization of `a` (requires m ≥ n).
pub fn qr_factor(a: &ZMat) -> QrFactors {
    factor_entry(a.clone(), None)
}

/// [`qr_factor`] with the working copy (and the τ/`T` stores) borrowed
/// from `ws` — the zero-churn form for factor loops; hand the buffers
/// back with [`QrFactors::recycle_into`] when the factors are spent.
pub fn qr_factor_ws(a: &ZMat, ws: &Workspace) -> QrFactors {
    factor_entry(ws.copy_of(a), Some(ws))
}

/// The unblocked one-reflector-at-a-time baseline, kept callable for A/B
/// measurements and the blocked-vs-unblocked property tests.
pub fn qr_factor_unblocked(a: &ZMat) -> QrFactors {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "qr_factor requires rows ≥ cols");
    flops_add(counts::zgeqrf(m, n));
    let mut p = a.clone();
    let mut tau = ZMat::zeros(n, 1);
    factor_panel(&mut p, &mut tau, 0, n, n);
    QrFactors { packed: p, tau, ts: ZMat::empty() }
}

/// Shared entry: counts, dispatches on size, pools scratch when possible.
fn factor_entry(mut p: ZMat, ws: Option<&Workspace>) -> QrFactors {
    let (m, n) = (p.rows(), p.cols());
    assert!(m >= n, "qr_factor requires rows ≥ cols");
    flops_add(counts::zgeqrf(m, n));
    let mut tau = match ws {
        Some(ws) => ws.take_scratch(n, 1),
        None => ZMat::zeros(n, 1),
    };
    let blocked = !qr_unblocked_forced() && (n >= BLOCK_MIN || (n >= BLOCK_MIN_TALL && m >= 4 * n));
    let ts = if !blocked {
        factor_panel(&mut p, &mut tau, 0, n, n);
        ZMat::empty()
    } else {
        let local;
        let scratch = match ws {
            Some(ws) => ws,
            None => {
                local = Workspace::new();
                &local
            }
        };
        let mut ts = scratch.take_scratch(NB, n);
        factor_blocked(&mut p, &mut tau, &mut ts, scratch);
        ts
    };
    QrFactors { packed: p, tau, ts }
}

/// LAPACK `zlarfg` on a column slice: `col[0]` holds α on entry and β on
/// exit, `col[1..]` the entries to annihilate on entry and the reflector
/// tail `v` on exit (implicit unit head). Returns τ — zero (leaving the
/// slice untouched) when the input is already reduced. **The single home
/// of the reflector sign/τ convention**, shared by the QR panels and
/// both Hessenberg reduction paths in [`crate::eig`].
pub(crate) fn zlarfg(col: &mut [Complex64]) -> Complex64 {
    let alpha = col[0];
    let mut xnorm_sq = 0.0;
    for z in &col[1..] {
        xnorm_sq += z.norm_sqr();
    }
    if xnorm_sq == 0.0 && alpha.im == 0.0 {
        return Complex64::ZERO;
    }
    let beta_mag = (alpha.norm_sqr() + xnorm_sq).sqrt();
    let beta = if alpha.re >= 0.0 { -beta_mag } else { beta_mag };
    let scale = (alpha - c64(beta, 0.0)).inv();
    for z in col[1..].iter_mut() {
        *z *= scale;
    }
    col[0] = c64(beta, 0.0);
    c64((beta - alpha.re) / beta, -alpha.im / beta)
}

/// Generates the Householder reflector for column `k`: on exit the
/// diagonal holds β, the sub-column holds `v` (implicit unit head), and
/// `tau[k]` the coefficient. Returns the τ.
fn reflector(p: &mut ZMat, tau: &mut ZMat, k: usize) -> Complex64 {
    let m = p.rows();
    let tau_k = zlarfg(&mut p.col_mut(k)[k..m]);
    tau[(k, 0)] = tau_k;
    tau_k
}

/// Scalar panel factorization: reflectors for columns `k0..k1`, each
/// applied (as `Hᴴ`) to columns `k+1..col_hi` only — the full matrix for
/// the unblocked path, the panel itself for the blocked path.
fn factor_panel(p: &mut ZMat, tau: &mut ZMat, k0: usize, k1: usize, col_hi: usize) {
    let m = p.rows();
    for k in k0..k1 {
        let tau_k = reflector(p, tau, k);
        if tau_k == Complex64::ZERO {
            continue;
        }
        let tch = tau_k.conj();
        for j in k + 1..col_hi {
            // w = vᴴ·A(:, j) with v = [1, p[k+1.., k]] (column slices so
            // the dot/axpy pair vectorizes).
            let (ck, cj) = p.two_cols_mut(k, j);
            let w = cj[k] + Complex64::dot_conj(&ck[k + 1..m], &cj[k + 1..m]);
            let f = tch * w;
            cj[k] -= f;
            let neg = -f;
            for (xi, &vi) in cj[k + 1..m].iter_mut().zip(&ck[k + 1..m]) {
                *xi = xi.mul_add(vi, neg);
            }
        }
    }
}

/// Blocked right-looking factorization: recursively factored 48-wide
/// panels, `T` via trsm on the Gram triangle, compact-WY trailing
/// updates on gemm.
fn factor_blocked(p: &mut ZMat, tau: &mut ZMat, ts: &mut ZMat, ws: &Workspace) {
    let (m, n) = (p.rows(), p.cols());
    let mut vbuf = ws.take_scratch(m, NB);
    let mut wbuf = ws.take_scratch(NB, n);
    let mut sbuf = ws.take_scratch(NB, NB);
    let mut k0 = 0;
    while k0 < n {
        let kb = NB.min(n - k0);
        // The recursion leaves the panel's assembled `T` at
        // ts[0..kb, k0..k0+kb]; no full-panel Gram rebuild is needed.
        factor_panel_recursive(p, tau, k0, k0 + kb, 0, &mut vbuf, &mut wbuf, &mut sbuf, ts);
        let nr = n - k0 - kb;
        if nr > 0 {
            stage_v(&p.block_view(k0, k0, m - k0, kb), &mut vbuf);
            let v = vbuf.block_view(0, 0, m - k0, kb);
            let t = ts.block_view(0, k0, kb, kb);
            let b = p.block_view_mut(k0, k0 + kb, m - k0, nr);
            apply_panel_wy(v, t, true, b, &mut wbuf);
        }
        k0 += kb;
    }
    ws.recycle(vbuf);
    ws.recycle(wbuf);
    ws.recycle(sbuf);
}

/// Recursive sub-panel factorization of columns `k0..k1` (the ROADMAP's
/// "recursive/sub-panel factor" micro-optimization, RGEQR3-style):
/// halves the range, factors the left half, applies its aggregated
/// compact-WY reflector to the right half as two gemms around a
/// [`crate::trmm`] — instead of one serial reflector-dot sweep per
/// column — recurses right, then **assembles the whole range's `T` from
/// the halves'** through the block identity
///
/// ```text
/// T = [ T₁  −T₁·(V₁ᴴV₂)·T₂ ]
///     [ 0          T₂      ]
/// ```
///
/// so the caller gets the panel `T` for free (no full-panel Gram
/// rebuild; the identity holds for any `T₁`/`T₂`, τ = 0 cases included —
/// the leaves' [`build_t`] handles those). `V₁ᴴV₂` needs no staging of
/// `V₁`: rows `h..` of the unit-lower-trapezoid are the raw stored
/// reflector block. Leaves of [`REC_BASE`] columns run the scalar loop.
/// Same reflectors as the scalar panel up to summation order, so the
/// blocked-vs-unblocked equivalence properties are unchanged. On return
/// the `kb×kb` upper-triangular `T` of the range sits at
/// `ts[r0..r0+kb, k0..k0+kb]` (`r0` = the range's row offset within its
/// panel, so nested calls tile `ts` without moves).
#[allow(clippy::too_many_arguments)]
fn factor_panel_recursive(
    p: &mut ZMat,
    tau: &mut ZMat,
    k0: usize,
    k1: usize,
    r0: usize,
    vbuf: &mut ZMat,
    wbuf: &mut ZMat,
    sbuf: &mut ZMat,
    ts: &mut ZMat,
) {
    let m = p.rows();
    let kb = k1 - k0;
    if kb <= REC_BASE {
        factor_panel(p, tau, k0, k1, k1);
        stage_v(&p.block_view(k0, k0, m - k0, kb), vbuf);
        build_t(vbuf.block_view(0, 0, m - k0, kb), tau, sbuf, ts, r0, k0, kb);
        return;
    }
    let h = kb / 2;
    factor_panel_recursive(p, tau, k0, k0 + h, r0, vbuf, wbuf, sbuf, ts);
    // Left half's WY transform hits the right half: B ← (I − V₁T₁ᴴV₁ᴴ)B.
    stage_v(&p.block_view(k0, k0, m - k0, h), vbuf);
    {
        let v1 = vbuf.block_view(0, 0, m - k0, h);
        let t1 = ts.block_view(r0, k0, h, h);
        let b = p.block_view_mut(k0, k0 + h, m - k0, kb - h);
        apply_panel_wy(v1, t1, true, b, wbuf);
    }
    factor_panel_recursive(p, tau, k0 + h, k1, r0 + h, vbuf, wbuf, sbuf, ts);
    // Cross block: G = V₁ᴴV₂ over the rows below the split (the top h
    // rows of V₂'s frame are zero), then T₁₂ = −T₁·G·T₂ in place.
    stage_v(&p.block_view(k0 + h, k0 + h, m - k0 - h, kb - h), vbuf);
    let mut g = sbuf.block_view_mut(0, 0, h, kb - h);
    gemm_into_unc(
        Complex64::ONE,
        p.block_view(k0 + h, k0, m - k0 - h, h),
        Op::Adjoint,
        vbuf.block_view(0, 0, m - k0 - h, kb - h),
        Op::None,
        Complex64::ZERO,
        g.rb(),
    );
    trmm_unc(
        Side::Left,
        UpLo::Upper,
        Op::None,
        Diag::NonUnit,
        Complex64::ONE,
        ts.block_view(r0, k0, h, h),
        g.rb(),
    );
    trmm_unc(
        Side::Right,
        UpLo::Upper,
        Op::None,
        Diag::NonUnit,
        Complex64::ONE,
        ts.block_view(r0 + h, k0 + h, kb - h, kb - h),
        g.rb(),
    );
    for j in 0..kb - h {
        for (dst, &gij) in ts.col_mut(k0 + h + j)[r0..r0 + h].iter_mut().zip(g.rb().col(j).iter()) {
            *dst = -gij;
        }
    }
}

/// Materializes the unit-lower-trapezoidal `V` of one panel (packed
/// reflectors `src`, R entries on/above the diagonal) into the staging
/// buffer: zeros above, explicit unit diagonal, reflector tails below.
/// Shared with the blocked Hessenberg reduction in [`crate::eig`], whose
/// packed panels have the same unit-lower-trapezoid shape one row below
/// the diagonal.
pub(crate) fn stage_v(src: &ZMatRef<'_>, vbuf: &mut ZMat) {
    let (mv, kb) = (src.rows(), src.cols());
    for t in 0..kb {
        let dst = &mut vbuf.col_mut(t)[..mv];
        dst[..t].fill(Complex64::ZERO);
        dst[t] = Complex64::ONE;
        dst[t + 1..].copy_from_slice(&src.col(t)[t + 1..]);
    }
}

/// Builds a reflector range's upper-triangular `T` into
/// `ts[r0..r0+kb, k0..k0+kb]` from `Q_range = I − V·T·Vᴴ`: the Gram
/// matrix `S = VᴴV` gives `T⁻¹ = diag(1/τ) + strict_upper(S)`, solved
/// against the identity with one trsm. A vanishing τ (exactly dependent
/// column) voids the inverse formulation, so that case falls back to the
/// `zlarft` column recurrence `T(0:j, j) = −τ_j·T·S(0:j, j)`.
fn build_t(
    v: ZMatRef<'_>,
    tau: &ZMat,
    sbuf: &mut ZMat,
    ts: &mut ZMat,
    r0: usize,
    k0: usize,
    kb: usize,
) {
    let mut s = sbuf.block_view_mut(0, 0, kb, kb);
    gemm_into_unc(Complex64::ONE, v, Op::Adjoint, v, Op::None, Complex64::ZERO, s.rb());
    let all_nonzero = (0..kb).all(|t| tau[(k0 + t, 0)] != Complex64::ZERO);
    let mut tblk = ts.block_view_mut(r0, k0, kb, kb);
    if all_nonzero {
        // M = diag(1/τ) + strict_upper(S); T = M⁻¹ via trsm on I.
        for t in 0..kb {
            *s.at_mut(t, t) = tau[(k0 + t, 0)].inv();
        }
        for j in 0..kb {
            let col = tblk.col_mut(j);
            col.fill(Complex64::ZERO);
            col[j] = Complex64::ONE;
        }
        trsm_unc(Side::Left, UpLo::Upper, Op::None, Diag::NonUnit, s.as_ref(), tblk);
    } else {
        for j in 0..kb {
            let tau_j = tau[(k0 + j, 0)];
            // tmp_i = Σ_{l=i..j} T(i,l)·S(l,j), then T(0:j,j) = −τ_j·tmp.
            let mut tmp = [Complex64::ZERO; NB];
            for (i, t) in tmp[..j].iter_mut().enumerate() {
                let mut acc = Complex64::ZERO;
                for l in i..j {
                    acc = acc.mul_add(tblk.at(i, l), s.at(l, j));
                }
                *t = acc;
            }
            let col = tblk.col_mut(j);
            col.fill(Complex64::ZERO);
            for (ci, &ti) in col[..j].iter_mut().zip(&tmp[..j]) {
                *ci = -(tau_j * ti);
            }
            col[j] = tau_j;
        }
    }
}

/// Applies one panel's compact-WY block reflector in place:
/// `B ← (I − V·Tᴴ·Vᴴ)·B` when `adjoint` (the `Qᴴ` direction used by the
/// factorization and `apply_qh`), `B ← (I − V·T·Vᴴ)·B` otherwise (the `Q`
/// direction used by `q_thin`). Two gemms around an in-place triangular
/// multiply: `W = Vᴴ·B`, `W ← op(T)·W` ([`crate::trmm`] — `T` is upper
/// triangular, so the square gemm and its second staging buffer are
/// gone), `B −= V·W`.
pub(crate) fn apply_panel_wy(
    v: ZMatRef<'_>,
    t: ZMatRef<'_>,
    adjoint: bool,
    mut b: ZMatMut<'_>,
    wbuf: &mut ZMat,
) {
    let kb = v.cols();
    let nc = b.cols();
    if nc == 0 {
        return;
    }
    let mut w = wbuf.block_view_mut(0, 0, kb, nc);
    gemm_into_unc(Complex64::ONE, v, Op::Adjoint, b.as_ref(), Op::None, Complex64::ZERO, w.rb());
    let t_op = if adjoint { Op::Adjoint } else { Op::None };
    trmm_unc(Side::Left, UpLo::Upper, t_op, Diag::NonUnit, Complex64::ONE, t, w.rb());
    gemm_into_unc(-Complex64::ONE, v, Op::None, w.as_ref(), Op::None, Complex64::ONE, b.rb());
}

impl QrFactors {
    /// The upper-triangular factor `R` (n×n).
    pub fn r(&self) -> ZMat {
        let n = self.packed.cols();
        let mut r = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..=j.min(n - 1) {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// τ coefficient of reflector `k`.
    #[inline]
    fn tau_k(&self, k: usize) -> Complex64 {
        self.tau[(k, 0)]
    }

    /// The thin orthonormal factor `Q` (m×n, QᴴQ = I).
    pub fn q_thin(&self) -> ZMat {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        let mut q = ZMat::zeros(m, n);
        self.q_thin_into(&mut q, &Workspace::new());
        q
    }

    /// Writes the thin `Q` into a caller-provided m×n buffer (typically
    /// borrowed from `ws`, which also supplies the WY staging scratch).
    pub fn q_thin_into(&self, q: &mut ZMat, ws: &Workspace) {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        assert_eq!((q.rows(), q.cols()), (m, n), "q_thin_into output shape mismatch");
        flops_add(counts::zunmqr(m, n, n));
        q.as_mut_slice().fill(Complex64::ZERO);
        for k in 0..n {
            q[(k, k)] = Complex64::ONE;
        }
        if self.ts.cols() > 0 {
            // Blocked: Q = Q_p0·Q_p1···I applied in reverse panel order.
            let mut vbuf = ws.take_scratch(m, NB);
            let mut wbuf = ws.take_scratch(NB, n);
            let mut k0 = n - (n - 1) % NB - 1;
            loop {
                let kb = NB.min(n - k0);
                stage_v(&self.packed.block_view(k0, k0, m - k0, kb), &mut vbuf);
                let v = vbuf.block_view(0, 0, m - k0, kb);
                let t = self.ts.block_view(0, k0, kb, kb);
                let b = q.block_view_mut(k0, 0, m - k0, n);
                apply_panel_wy(v, t, false, b, &mut wbuf);
                if k0 == 0 {
                    break;
                }
                k0 -= NB;
            }
            ws.recycle(vbuf);
            ws.recycle(wbuf);
        } else {
            // Apply reflectors in reverse order: Q = H_0·H_1···H_{n−1}·I.
            for k in (0..n).rev() {
                let tau_k = self.tau_k(k);
                if tau_k == Complex64::ZERO {
                    continue;
                }
                for j in 0..n {
                    let mut w = q[(k, j)];
                    for i in k + 1..m {
                        w += self.packed[(i, k)].conj() * q[(i, j)];
                    }
                    let f = tau_k * w;
                    q[(k, j)] -= f;
                    for i in k + 1..m {
                        let vik = self.packed[(i, k)];
                        q[(i, j)] -= vik * f;
                    }
                }
            }
        }
    }

    /// Applies `Qᴴ` to a matrix (m×p → m×p, top n rows meaningful).
    pub fn apply_qh(&self, b: &ZMat) -> ZMat {
        let mut x = b.clone();
        self.apply_qh_mut(&mut x, &Workspace::new());
        x
    }

    /// [`QrFactors::apply_qh`] writing into a caller-provided buffer
    /// (fully overwritten) with WY staging scratch borrowed from `ws`.
    pub fn apply_qh_into(&self, b: ZMatRef<'_>, x: &mut ZMat, ws: &Workspace) {
        assert_eq!(
            (x.rows(), x.cols()),
            (b.rows(), b.cols()),
            "apply_qh_into output shape mismatch"
        );
        x.view_mut().copy_from_view(b);
        self.apply_qh_mut(x, ws);
    }

    /// In-place `X ← Qᴴ·X` — blocked WY sweeps when the factors carry
    /// panel `T`s, the scalar reflector loop otherwise.
    fn apply_qh_mut(&self, x: &mut ZMat, ws: &Workspace) {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        assert_eq!(x.rows(), m, "apply_qh rhs row count mismatch");
        let nc = x.cols();
        flops_add(counts::zunmqr(m, nc, n));
        if self.ts.cols() > 0 {
            let mut vbuf = ws.take_scratch(m, NB);
            let mut wbuf = ws.take_scratch(NB, nc.max(1));
            let mut k0 = 0;
            while k0 < n {
                let kb = NB.min(n - k0);
                stage_v(&self.packed.block_view(k0, k0, m - k0, kb), &mut vbuf);
                let v = vbuf.block_view(0, 0, m - k0, kb);
                let t = self.ts.block_view(0, k0, kb, kb);
                let b = x.block_view_mut(k0, 0, m - k0, nc);
                apply_panel_wy(v, t, true, b, &mut wbuf);
                k0 += kb;
            }
            ws.recycle(vbuf);
            ws.recycle(wbuf);
        } else {
            for k in 0..n {
                let tau_k = self.tau_k(k);
                if tau_k == Complex64::ZERO {
                    continue;
                }
                let tch = tau_k.conj();
                for j in 0..nc {
                    let mut w = x[(k, j)];
                    for i in k + 1..m {
                        w += self.packed[(i, k)].conj() * x[(i, j)];
                    }
                    let f = tch * w;
                    x[(k, j)] -= f;
                    for i in k + 1..m {
                        let vik = self.packed[(i, k)];
                        x[(i, j)] -= vik * f;
                    }
                }
            }
        }
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂` via `R x = Qᴴ b`.
    pub fn least_squares(&self, b: &ZMat) -> ZMat {
        let n = self.packed.cols();
        let ws = Workspace::new();
        let mut x = ZMat::zeros(n, b.cols());
        self.least_squares_into(b.view(), &mut x, &ws);
        x
    }

    /// [`QrFactors::least_squares`] writing the n×nrhs solution into a
    /// caller-provided buffer, every temporary borrowed from `ws`.
    pub fn least_squares_into(&self, b: ZMatRef<'_>, x: &mut ZMat, ws: &Workspace) {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        assert_eq!(b.rows(), m, "least_squares rhs row count mismatch");
        let nrhs = b.cols();
        assert_eq!((x.rows(), x.cols()), (n, nrhs), "least_squares_into output shape mismatch");
        let mut qhb = ws.take_scratch(m, nrhs);
        qhb.view_mut().copy_from_view(b);
        self.apply_qh_mut(&mut qhb, ws);
        for j in 0..nrhs {
            x.col_mut(j).copy_from_slice(&qhb.col(j)[..n]);
        }
        ws.recycle(qhb);
        // Back substitution with R: one blocked triangular sweep.
        flops_add(counts::ztrsm(n, nrhs));
        trsm_unc(
            Side::Left,
            UpLo::Upper,
            Op::None,
            Diag::NonUnit,
            self.packed.block_view(0, 0, n, n),
            x.view_mut(),
        );
    }

    /// Consumes the factors, returning every backing buffer — packed
    /// matrix, τ column and `T` store — to the pool.
    pub fn recycle_into(self, ws: &Workspace) {
        ws.recycle(self.packed);
        ws.recycle(self.tau);
        ws.recycle(self.ts);
    }
}

/// One-shot QR factorization.
pub fn qr(a: &ZMat) -> (ZMat, ZMat) {
    let f = qr_factor(a);
    (f.q_thin(), f.r())
}

/// Orthonormalizes the columns of `a` (thin Q of its QR factorization).
pub fn orthonormalize(a: &ZMat) -> ZMat {
    qr_factor(a).q_thin()
}

/// [`orthonormalize`] over pooled scratch: the returned `Q` and every
/// internal temporary are borrowed from `ws` (recycle `Q` when spent).
pub fn orthonormalize_ws(a: &ZMat, ws: &Workspace) -> ZMat {
    let f = qr_factor_ws(a, ws);
    let mut q = ws.take_scratch(a.rows(), a.cols());
    f.q_thin_into(&mut q, ws);
    f.recycle_into(ws);
    q
}

/// Least-squares solve `min ‖A·x − b‖₂` (A must be m×n with m ≥ n).
pub fn qr_least_squares(a: &ZMat, b: &ZMat) -> ZMat {
    qr_factor(a).least_squares(b)
}

/// Moore–Penrose pseudo-inverse action `A⁺·b` for full-column-rank `A`,
/// used to build `U⁺` when self-energies are assembled from a reduced mode
/// set (§3.A).
pub fn pinv_apply(a: &ZMat, b: &ZMat) -> ZMat {
    qr_least_squares(a, b)
}

/// Verifies column orthonormality: returns `‖QᴴQ − I‖_max`.
pub fn orthonormality_defect(q: &ZMat) -> f64 {
    let n = q.cols();
    let mut qhq = ZMat::zeros(n, n);
    gemm(Complex64::ONE, q, Op::Adjoint, q, Op::None, Complex64::ZERO, &mut qhq);
    qhq.max_diff(&ZMat::identity(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_matrix() {
        let a = ZMat::random(10, 6, 3);
        let (q, r) = qr(&a);
        assert!((&q * &r).max_diff(&a) < 1e-10);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = ZMat::random(12, 7, 5);
        let q = orthonormalize(&a);
        assert!(orthonormality_defect(&q) < 1e-11);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = ZMat::random(8, 8, 7);
        let (_, r) = qr(&a);
        for j in 0..8 {
            for i in j + 1..8 {
                assert!(r[(i, j)].abs() < 1e-13);
            }
        }
    }

    #[test]
    fn least_squares_exact_for_square_systems() {
        let a = ZMat::random(6, 6, 9);
        let x_true = ZMat::random(6, 2, 10);
        let b = &a * &x_true;
        let x = qr_least_squares(&a, &b);
        assert!(x.max_diff(&x_true) < 1e-9);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Overdetermined system: residual must be orthogonal to range(A).
        let a = ZMat::random(10, 4, 11);
        let b = ZMat::random(10, 1, 12);
        let x = qr_least_squares(&a, &b);
        let r = &b - &(&a * &x);
        let mut proj = ZMat::zeros(4, 1);
        gemm(Complex64::ONE, &a, Op::Adjoint, &r, Op::None, Complex64::ZERO, &mut proj);
        assert!(proj.norm_max() < 1e-9, "Aᴴr = {:.3e}", proj.norm_max());
    }

    #[test]
    fn apply_qh_matches_explicit_q() {
        let a = ZMat::random(9, 5, 13);
        let b = ZMat::random(9, 3, 14);
        let f = qr_factor(&a);
        let explicit = {
            // Build the full 9×9 Q by applying reflectors to the identity.
            let mut full = ZMat::identity(9);
            // q_thin gives only the first 5 columns; build Qᴴb via reflectors.
            full = f.apply_qh(&full);
            &full * &b
        };
        let fast = f.apply_qh(&b);
        assert!(fast.max_diff(&explicit) < 1e-10);
    }

    #[test]
    fn handles_rank_deficient_direction_gracefully() {
        // Two identical columns: orthonormalize still returns orthonormal
        // columns (the second spans residual noise but QᴴQ = I must hold
        // for the leading independent part).
        let mut a = ZMat::random(8, 2, 15);
        let col0: Vec<Complex64> = a.col(0).to_vec();
        a.col_mut(1).copy_from_slice(&col0);
        let q = orthonormalize(&a);
        // First column must be normalized.
        let n0: f64 = q.col(0).iter().map(|z| z.norm_sqr()).sum();
        assert!((n0 - 1.0).abs() < 1e-12);
    }

    // ── blocked-path tests ───────────────────────────────────────────

    /// Reference reconstruction error ‖QR − A‖ and defect ‖QᴴQ − I‖.
    fn check_factorization(a: &ZMat, f: &QrFactors, tol: f64) {
        let q = f.q_thin();
        let r = f.r();
        assert!((&q * &r).max_diff(a) < tol, "QR ≠ A: {:.2e}", (&q * &r).max_diff(a));
        assert!(orthonormality_defect(&q) < tol, "QᴴQ ≠ I: {:.2e}", orthonormality_defect(&q));
    }

    #[test]
    fn blocked_matches_unblocked_across_crossover() {
        // Square shapes straddle BLOCK_MIN; (560, 130) takes the
        // tall-skinny dispatch (m ≥ 4n with n ≥ BLOCK_MIN_TALL).
        for (m, n, seed) in
            [(200, 200, 21u64), (230, 197, 22), (256, 224, 23), (192, 192, 24), (560, 130, 25)]
        {
            let a = ZMat::random(m, n, seed);
            let fb = qr_factor(&a);
            assert!(fb.ts.cols() > 0, "n = {n} must take the blocked path");
            let fu = qr_factor_unblocked(&a);
            check_factorization(&a, &fb, 1e-9 * m as f64);
            // Same reflectors and R up to roundoff (the panels reproduce
            // the scalar algorithm exactly; only summation order differs).
            let scale = a.norm_max().max(1.0);
            assert!(
                fb.packed.max_diff(&fu.packed) < 1e-10 * scale * m as f64,
                "packed drift {:.2e}",
                fb.packed.max_diff(&fu.packed)
            );
            let b = ZMat::random(m, 3, seed + 100);
            let xb = fb.least_squares(&b);
            let xu = fu.least_squares(&b);
            assert!(xb.max_diff(&xu) < 1e-8 * m as f64, "{:.2e}", xb.max_diff(&xu));
        }
    }

    #[test]
    fn blocked_tall_skinny() {
        // m ≫ n with n above the crossover: multiple panels, long tails.
        let a = ZMat::random(700, 224, 31);
        let f = qr_factor(&a);
        assert!(f.ts.cols() > 0);
        check_factorization(&a, &f, 1e-7);
        let b = ZMat::random(700, 2, 32);
        let x = f.least_squares(&b);
        // Residual orthogonal to range(A).
        let r = &b - &(&a * &x);
        let mut proj = ZMat::zeros(224, 2);
        gemm(Complex64::ONE, &a, Op::Adjoint, &r, Op::None, Complex64::ZERO, &mut proj);
        assert!(proj.norm_max() < 1e-7, "Aᴴr = {:.3e}", proj.norm_max());
    }

    #[test]
    fn blocked_rank_deficient() {
        // Duplicate a column band across a panel boundary and zero a few
        // columns outright: the exactly-zero columns produce τ = 0
        // reflectors, exercising the recurrence fallback for T (the
        // trsm-inverse formulation needs every τ nonzero).
        let mut a = ZMat::random(260, 200, 41);
        for j in 100..104 {
            let src: Vec<Complex64> = a.col(j - 100).to_vec();
            a.col_mut(j).copy_from_slice(&src);
        }
        for j in 60..62 {
            a.col_mut(j).fill(Complex64::ZERO);
        }
        let f = qr_factor(&a);
        assert!(f.ts.cols() > 0);
        assert!(f.tau_k(60) == Complex64::ZERO, "zero column must give τ = 0");
        let q = f.q_thin();
        // Q still reproduces A with R (rank-deficient R has ~zero rows).
        assert!((&q * &f.r()).max_diff(&a) < 1e-8);
    }

    #[test]
    fn force_unblocked_switch_controls_dispatch() {
        let a = ZMat::random(224, 224, 51);
        let fb = qr_factor(&a);
        assert!(fb.ts.cols() > 0);
        force_unblocked_qr(true);
        let fu = qr_factor(&a);
        force_unblocked_qr(false);
        assert_eq!(fu.ts.cols(), 0, "forced factorization must be unblocked");
        assert!(fb.packed.max_diff(&fu.packed) < 1e-8);
    }

    #[test]
    fn ws_factor_is_bit_identical_to_fresh() {
        let a = ZMat::random(240, 200, 61);
        let b = ZMat::random(240, 4, 62);
        let fresh = qr_factor(&a);
        let x_fresh = fresh.least_squares(&b);
        // Dirty pool: recycled through a decoy factorization first.
        let ws = Workspace::new();
        let decoy = qr_factor_ws(&ZMat::random(250, 220, 63), &ws);
        decoy.recycle_into(&ws);
        let f = qr_factor_ws(&a, &ws);
        assert!(f.packed.max_diff(&fresh.packed) == 0.0, "recycled pool changed factor bits");
        let mut x = ws.take_scratch(200, 4);
        f.least_squares_into(b.view(), &mut x, &ws);
        assert!(x.max_diff(&x_fresh) == 0.0, "recycled pool changed solve bits");
        f.recycle_into(&ws);
        ws.recycle(x);
    }

    #[test]
    fn q_thin_into_matches_q_thin() {
        let a = ZMat::random(270, 220, 71);
        let f = qr_factor(&a);
        assert!(f.ts.cols() > 0);
        let q_ref = f.q_thin();
        let ws = Workspace::new();
        let mut q = ws.take_scratch(270, 220);
        f.q_thin_into(&mut q, &ws);
        assert!(q.max_diff(&q_ref) == 0.0);
    }

    #[test]
    fn orthonormalize_ws_matches_plain() {
        let ws = Workspace::new();
        for trial in 0..2 {
            let a = ZMat::random(40, 9, 81 + trial);
            let q_ref = orthonormalize(&a);
            let q = orthonormalize_ws(&a, &ws);
            assert!(q.max_diff(&q_ref) == 0.0, "trial {trial}");
            ws.recycle(q);
        }
    }

    #[test]
    fn counts_blocked_qr_by_formula() {
        let a = ZMat::random(224, 224, 91);
        let scope = crate::flops::FlopScope::start();
        let _ = qr_factor(&a);
        assert!(scope.elapsed() >= counts::zgeqrf(224, 224));
    }
}
