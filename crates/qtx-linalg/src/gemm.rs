//! Complex matrix–matrix multiplication (`zgemm`).
//!
//! `zgemm` dominates both FEAST (Eq. 10 projector application) and
//! SplitSolve (the two block products per `Q_i` in Algorithm 1), so this is
//! the kernel the whole reproduction leans on. The implementation is a
//! cache-blocked triple loop over column panels; large products are
//! parallelized over output panels with rayon, following the
//! data-parallel-iterator idiom of the session guides. Operand transforms
//! (`N`, `T`, `H`) are materialized once per call rather than strided,
//! trading a copy for vectorizable inner loops.

use crate::complex::Complex64;
use crate::flops::{counts, flops_add};
use crate::zmat::ZMat;
use rayon::prelude::*;

/// Operand transform applied before multiplication, mirroring BLAS `trans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the plain transpose.
    Transpose,
    /// Use the conjugate (Hermitian) transpose.
    Adjoint,
}

impl Op {
    fn apply(self, m: &ZMat) -> ZMat {
        match self {
            Op::None => m.clone(),
            Op::Transpose => m.transpose(),
            Op::Adjoint => m.adjoint(),
        }
    }

    fn shape(self, m: &ZMat) -> (usize, usize) {
        match self {
            Op::None => (m.rows(), m.cols()),
            _ => (m.cols(), m.rows()),
        }
    }
}

/// Minimum output elements before the panel loop goes parallel. Tiny
/// products (reduced FEAST systems, SPIKE tips) stay serial to avoid
/// fork-join overhead.
const PAR_THRESHOLD: usize = 64 * 64;

/// Panel width (columns of C per task).
const PANEL: usize = 32;

/// `C ← α·op(A)·op(B) + β·C`, the full BLAS-3 form.
pub fn gemm(
    alpha: Complex64,
    a: &ZMat,
    op_a: Op,
    b: &ZMat,
    op_b: Op,
    beta: Complex64,
    c: &mut ZMat,
) {
    let (m, ka) = op_a.shape(a);
    let (kb, n) = op_b.shape(b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch: {ka} vs {kb}");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    let k = ka;

    // Materialize transforms so that A is addressed column-major by k and
    // B column-major by n; the inner loop then walks contiguous memory.
    let a_eff = op_a.apply(a);
    let b_eff = op_b.apply(b);

    flops_add(counts::zgemm(m, n, k));

    let a_data = a_eff.as_slice();
    let c_rows = c.rows();
    let do_panel = |jlo: usize, jhi: usize, c_panel: &mut [Complex64]| {
        for (jj, j) in (jlo..jhi).enumerate() {
            let c_col = &mut c_panel[jj * c_rows..(jj + 1) * c_rows];
            if beta == Complex64::ZERO {
                c_col.fill(Complex64::ZERO);
            } else if beta != Complex64::ONE {
                for z in c_col.iter_mut() {
                    *z = *z * beta;
                }
            }
            let b_col = b_eff.col(j);
            for (l, &blj) in b_col.iter().enumerate().take(k) {
                let factor = alpha * blj;
                if factor == Complex64::ZERO {
                    continue;
                }
                let a_col = &a_data[l * m..(l + 1) * m];
                for (ci, &ail) in c_col.iter_mut().zip(a_col) {
                    *ci = ci.mul_add(ail, factor);
                }
            }
        }
    };

    if m * n >= PAR_THRESHOLD && n > PANEL {
        let chunks: Vec<(usize, &mut [Complex64])> = c
            .as_mut_slice()
            .chunks_mut(PANEL * c_rows)
            .enumerate()
            .collect();
        chunks.into_par_iter().for_each(|(idx, panel)| {
            let jlo = idx * PANEL;
            let jhi = (jlo + panel.len() / c_rows).min(n);
            do_panel(jlo, jhi, panel);
        });
    } else {
        do_panel(0, n, c.as_mut_slice());
    }
}

/// Convenience product `A·B` (the `&a * &b` operator routes here).
pub fn matmul(a: &ZMat, b: &ZMat) -> ZMat {
    let mut c = ZMat::zeros(a.rows(), b.cols());
    gemm(Complex64::ONE, a, Op::None, b, Op::None, Complex64::ZERO, &mut c);
    c
}

/// `y ← α·op(A)·x + β·y` (BLAS-2).
pub fn gemv(
    alpha: Complex64,
    a: &ZMat,
    op_a: Op,
    x: &[Complex64],
    beta: Complex64,
    y: &mut [Complex64],
) {
    let (m, k) = op_a.shape(a);
    assert_eq!(x.len(), k, "gemv x length");
    assert_eq!(y.len(), m, "gemv y length");
    let a_eff = op_a.apply(a);
    for z in y.iter_mut() {
        *z = *z * beta;
    }
    for (l, &xl) in x.iter().enumerate() {
        let f = alpha * xl;
        if f == Complex64::ZERO {
            continue;
        }
        for (yi, &ail) in y.iter_mut().zip(a_eff.col(l)) {
            *yi = yi.mul_add(ail, f);
        }
    }
    flops_add(8 * (m as u64) * (k as u64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn naive(a: &ZMat, b: &ZMat) -> ZMat {
        let mut c = ZMat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = Complex64::ZERO;
                for l in 0..a.cols() {
                    s += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn matches_naive_small() {
        let a = ZMat::random(7, 5, 1);
        let b = ZMat::random(5, 9, 2);
        assert!(matmul(&a, &b).max_diff(&naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn matches_naive_large_parallel_path() {
        let a = ZMat::random(130, 140, 3);
        let b = ZMat::random(140, 150, 4);
        assert!(matmul(&a, &b).max_diff(&naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn transpose_and_adjoint_ops() {
        let a = ZMat::random(6, 4, 5);
        let b = ZMat::random(6, 3, 6);
        // C = Aᴴ B
        let mut c = ZMat::zeros(4, 3);
        gemm(Complex64::ONE, &a, Op::Adjoint, &b, Op::None, Complex64::ZERO, &mut c);
        assert!(c.max_diff(&naive(&a.adjoint(), &b)) < 1e-12);
        // C = Aᵀ B
        let mut ct = ZMat::zeros(4, 3);
        gemm(Complex64::ONE, &a, Op::Transpose, &b, Op::None, Complex64::ZERO, &mut ct);
        assert!(ct.max_diff(&naive(&a.transpose(), &b)) < 1e-12);
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = ZMat::random(5, 5, 7);
        let b = ZMat::random(5, 5, 8);
        let c0 = ZMat::random(5, 5, 9);
        let alpha = c64(0.5, -1.0);
        let beta = c64(2.0, 0.25);
        let mut c = c0.clone();
        gemm(alpha, &a, Op::None, &b, Op::None, beta, &mut c);
        let expected = &naive(&a, &b).scaled(alpha) + &c0.scaled(beta);
        assert!(c.max_diff(&expected) < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let a = ZMat::random(8, 8, 10);
        let id = ZMat::identity(8);
        assert!(matmul(&a, &id).max_diff(&a) < 1e-14);
        assert!(matmul(&id, &a).max_diff(&a) < 1e-14);
    }

    #[test]
    fn gemv_matches_matvec() {
        let a = ZMat::random(6, 4, 11);
        let x: Vec<Complex64> = (0..4).map(|i| c64(i as f64 + 0.5, -1.0)).collect();
        let mut y = vec![Complex64::ZERO; 6];
        gemv(Complex64::ONE, &a, Op::None, &x, Complex64::ZERO, &mut y);
        let reference = a.matvec(&x);
        for (u, v) in y.iter().zip(&reference) {
            assert!((*u - *v).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_counts_flops() {
        let before = crate::flops::flops_total();
        let a = ZMat::random(10, 12, 1);
        let b = ZMat::random(12, 14, 2);
        let _ = matmul(&a, &b);
        assert!(crate::flops::flops_total() - before >= counts::zgemm(10, 14, 12));
    }
}
