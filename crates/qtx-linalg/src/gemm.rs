//! Complex matrix–matrix multiplication (`zgemm`), zero-copy and tiled.
//!
//! `zgemm` dominates both FEAST (Eq. 10 projector application) and
//! SplitSolve (the two block products per `Q_i` in Algorithm 1), so this is
//! the kernel the whole reproduction leans on. The implementation follows
//! the classic BLIS/GotoBLAS decomposition:
//!
//! * operands are [`ZMatRef`] borrowed views — the `Op::None` path never
//!   copies or clones a matrix, and transposed/adjoint operands are read
//!   *during packing* instead of being materialized up front;
//! * the output is partitioned into `MC×KC×NC` cache blocks; each block's
//!   `A`/`B` panels are packed once into small planar (split re/im)
//!   buffers laid out in `MR×NR` micro-panel order, which turns the inner
//!   loop into contiguous SIMD streams;
//! * the register-tiled microkernel is **dispatched at run time** through
//!   [`crate::kernel`]: AVX-512 (8×8 tile, 8-double zmm lanes), AVX2+FMA
//!   (4×6 tile, 4-double ymm lanes) or the portable scalar 8×4 loop,
//!   selected once by CPU-feature detection (override with
//!   `QTX_FORCE_KERNEL=scalar|avx2|avx512` or
//!   [`crate::kernel::force_kernel`]);
//! * large products are parallelized over disjoint 2-D output tiles with
//!   rayon — each task owns a rectangle of `C` and its own packing
//!   buffers, so no synchronization happens inside the kernel.
//!
//! # Packing contract
//!
//! Every variant consumes the same planar packed layout, parameterized by
//! its own tile shape `(mr, nr)` (read from [`crate::kernel::Kernel`] at
//! run time, since the micro-panel stride *is* the tile shape):
//!
//! * A-panels are `mr`-row micro-panels — element `(i, l)` of micro-panel
//!   `p` lives at `(p·kc + l)·mr + i`, rows zero-padded to `mr`;
//! * B-panels are `nr`-column micro-panels — element `(l, j)` of
//!   micro-panel `q` lives at `(q·kc + l)·nr + j`, columns zero-padded;
//! * re/im planes are separate buffers, `Op::Transpose`/`Op::Adjoint` are
//!   folded in during packing (conjugation flips the im plane's sign), so
//!   the microkernel only ever multiplies two untransposed panels;
//! * α/β are applied at the output-tile write ([`write_tile`]), never
//!   inside the microkernel, and β is applied on the first k-panel only.
//!
//! Every variant also performs the per-lane reduction in the same fused
//! operation order (see the [`crate::kernel`] numerical contract), so the
//! SIMD paths are equivalent to the scalar baseline up to at most the
//! FMA-vs-separate-rounding difference of the portable fallback.
//!
//! Small products (reduced FEAST systems, SPIKE tips, block sizes of a few
//! dozen) skip packing entirely and run a direct view-based loop: the
//! break-even point where packing pays for itself is a few thousand output
//! elements. The dispatch ladder therefore only governs the packed path;
//! the direct path is scalar by construction.

use crate::complex::{c64, Complex64};
use crate::flops::{counts, flops_add};
use crate::kernel::{active_kernel, Acc, MR_MAX, NR_MAX};
use crate::zmat::{ZMat, ZMatMut, ZMatRef};
use rayon::prelude::*;

/// Operand transform applied before multiplication, mirroring BLAS `trans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the plain transpose.
    Transpose,
    /// Use the conjugate (Hermitian) transpose.
    Adjoint,
}

impl Op {
    /// Shape of `op(M)` for a matrix of shape `rows × cols`.
    fn shape_of(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Op::None => (rows, cols),
            _ => (cols, rows),
        }
    }

    fn shape(self, m: &ZMat) -> (usize, usize) {
        self.shape_of(m.rows(), m.cols())
    }

    /// Element `op(M)[i, j]` read through a view (no materialization).
    #[inline(always)]
    fn at(self, m: ZMatRef<'_>, i: usize, j: usize) -> Complex64 {
        match self {
            Op::None => m.at(i, j),
            Op::Transpose => m.at(j, i),
            Op::Adjoint => m.at(j, i).conj(),
        }
    }
}

/// K-dimension cache block (panel depth); sized so an `MC×KC` A-panel
/// (planar f64) stays within L2.
const KC: usize = 192;
/// Row cache block.
const MC: usize = 64;
/// Column cache block: caps the packed B panel at `KC×NC` so it stays
/// cache-resident while the `ic` loop sweeps over it.
const NC: usize = 128;
/// Below this `m·n·k` volume the direct (non-packing) path wins: packing
/// scratch setup costs more than it saves on cache traffic.
const SMALL_MNK: usize = 64 * 64 * 64;
/// …except for panel shapes: with at least this panel depth and
/// [`TALL_MN`] output elements, each packed element feeds ≥ `8·TALL_K`
/// flops, so packing pays even under the volume cutoff (the blocked
/// factorizations' tall-skinny `m×32×32` trailing updates live here).
const TALL_K: usize = 24;
/// Minimum output-tile area for the panel-shape exception.
const TALL_MN: usize = 64 * 64;
/// Minimum `m·n·k` before the tile loop goes parallel; smaller products
/// run inline to avoid fork-join overhead.
const PAR_MNK: usize = 128 * 128 * 128;

/// `C ← α·op(A)·op(B) + β·C`, the full BLAS-3 form (owned-operand entry).
pub fn gemm(
    alpha: Complex64,
    a: &ZMat,
    op_a: Op,
    b: &ZMat,
    op_b: Op,
    beta: Complex64,
    c: &mut ZMat,
) {
    gemm_view(alpha, a.view(), op_a, b.view(), op_b, beta, c);
}

/// `C ← α·op(A)·op(B) + β·C` over borrowed views (zero-copy entry).
pub fn gemm_view(
    alpha: Complex64,
    a: ZMatRef<'_>,
    op_a: Op,
    b: ZMatRef<'_>,
    op_b: Op,
    beta: Complex64,
    c: &mut ZMat,
) {
    gemm_into(alpha, a, op_a, b, op_b, beta, c.view_mut());
}

/// `C ← α·op(A)·op(B) + β·C` where `C` is a possibly strided mutable view
/// — the entry the blocked LU/LDLᴴ trailing updates and [`crate::trsm`]
/// use to accumulate straight into a panel of a larger matrix.
pub fn gemm_into(
    alpha: Complex64,
    a: ZMatRef<'_>,
    op_a: Op,
    b: ZMatRef<'_>,
    op_b: Op,
    beta: Complex64,
    c: ZMatMut<'_>,
) {
    let (m, ka) = op_a.shape_of(a.rows(), a.cols());
    let n = op_b.shape_of(b.rows(), b.cols()).1;
    flops_add(counts::zgemm(m, n, ka));
    gemm_into_unc(alpha, a, op_a, b, op_b, beta, c);
}

/// [`gemm_into`] without FLOP accounting. The factorization kernels call
/// this so their own `zgetrf`/`zhetrf` formula counts aren't inflated by
/// the internal gemm traffic (the counters stay deterministic formulas,
/// matching the paper's §5.B methodology).
pub(crate) fn gemm_into_unc(
    alpha: Complex64,
    a: ZMatRef<'_>,
    op_a: Op,
    b: ZMatRef<'_>,
    op_b: Op,
    beta: Complex64,
    mut c: ZMatMut<'_>,
) {
    let (m, ka) = op_a.shape_of(a.rows(), a.cols());
    let (kb, n) = op_b.shape_of(b.rows(), b.cols());
    assert_eq!(ka, kb, "gemm inner dimension mismatch: {ka} vs {kb}");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm output shape mismatch");
    let k = ka;

    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == Complex64::ZERO {
        scale_in_place(&mut c, beta);
        return;
    }
    // A/B harness: the `seed-gemm` feature routes everything through a
    // reimplementation of the seed kernel (cloned operands + column-panel
    // loop) so solver-level speedups can be measured end to end.
    #[cfg(feature = "seed-gemm")]
    {
        gemm_seed_reference(alpha, a, op_a, b, op_b, beta, &mut c);
    }
    #[cfg(not(feature = "seed-gemm"))]
    if m * n * k < SMALL_MNK && !(k >= TALL_K && m * n >= TALL_MN) {
        gemm_direct(alpha, a, op_a, b, op_b, beta, &mut c);
    } else {
        gemm_tiled(alpha, a, op_a, b, op_b, beta, &mut c);
    }
}

/// The seed implementation, kept behind the `seed-gemm` feature as the
/// before/after baseline: materializes both transforms, then sweeps
/// column panels.
#[cfg(feature = "seed-gemm")]
fn gemm_seed_reference(
    alpha: Complex64,
    a: ZMatRef<'_>,
    op_a: Op,
    b: ZMatRef<'_>,
    op_b: Op,
    beta: Complex64,
    c: &mut ZMatMut<'_>,
) {
    let materialize = |v: ZMatRef<'_>, op: Op| -> ZMat {
        let owned = v.to_owned();
        match op {
            Op::None => owned,
            Op::Transpose => owned.transpose(),
            Op::Adjoint => owned.adjoint(),
        }
    };
    let a_eff = materialize(a, op_a);
    let b_eff = materialize(b, op_b);
    let (m, k) = (a_eff.rows(), a_eff.cols());
    let a_data = a_eff.as_slice();
    for j in 0..c.cols() {
        let c_col = c.col_mut(j);
        if beta == Complex64::ZERO {
            c_col.fill(Complex64::ZERO);
        } else if beta != Complex64::ONE {
            for z in c_col.iter_mut() {
                *z *= beta;
            }
        }
        for (l, &blj) in b_eff.col(j).iter().enumerate().take(k) {
            let factor = alpha * blj;
            if factor == Complex64::ZERO {
                continue;
            }
            let a_col = &a_data[l * m..(l + 1) * m];
            for (ci, &ail) in c_col.iter_mut().zip(a_col) {
                *ci = ci.mul_add(ail, factor);
            }
        }
    }
}

/// `C ← β·C` (handles the `β = 0`/`β = 1` fast cases). Large dense views
/// scale in parallel over mutable chunks — no intermediate collection;
/// strided views fall back to a per-column sweep.
fn scale_in_place(c: &mut ZMatMut<'_>, beta: Complex64) {
    if beta == Complex64::ONE {
        return;
    }
    if let Some(data) = c.contiguous_mut() {
        if beta == Complex64::ZERO {
            data.fill(Complex64::ZERO);
        } else if data.len() >= PAR_MNK / 64 && rayon::current_num_threads() > 1 {
            data.par_chunks_mut(16 * 1024).for_each(|chunk| {
                for z in chunk.iter_mut() {
                    *z *= beta;
                }
            });
        } else {
            for z in data.iter_mut() {
                *z *= beta;
            }
        }
        return;
    }
    for j in 0..c.cols() {
        let col = c.col_mut(j);
        if beta == Complex64::ZERO {
            col.fill(Complex64::ZERO);
        } else {
            for z in col.iter_mut() {
                *z *= beta;
            }
        }
    }
}

/// Direct view-based product for small shapes: no packing, no parallelism.
///
/// When `op(A) = A` the inner loop is the classic column AXPY over
/// contiguous columns of `A`; for transposed/adjoint `A` each output entry
/// is a dot product over a contiguous column of `A`. `B` is always read
/// through the `Op` accessor (strided at worst, and small by assumption).
fn gemm_direct(
    alpha: Complex64,
    a: ZMatRef<'_>,
    op_a: Op,
    b: ZMatRef<'_>,
    op_b: Op,
    beta: Complex64,
    c: &mut ZMatMut<'_>,
) {
    let (m, k) = op_a.shape_of(a.rows(), a.cols());
    let n = c.cols();
    for j in 0..n {
        let c_col = c.col_mut(j);
        if beta == Complex64::ZERO {
            c_col.fill(Complex64::ZERO);
        } else if beta != Complex64::ONE {
            for z in c_col.iter_mut() {
                *z *= beta;
            }
        }
        match op_a {
            Op::None => {
                for l in 0..k {
                    let factor = alpha * op_b.at(b, l, j);
                    if factor == Complex64::ZERO {
                        continue;
                    }
                    let a_col = a.col(l);
                    for (ci, &ail) in c_col.iter_mut().zip(a_col) {
                        *ci = ci.mul_add(ail, factor);
                    }
                }
            }
            Op::Adjoint if op_b == Op::None => {
                // Aᴴ·B with both columns contiguous: the 4-lane conjugated
                // dot keeps the per-output FMA chains pipelined instead of
                // serializing on one accumulator — the panel-shaped
                // (small m·n, deep k) products of the recursive QR panels
                // and the FEAST Gram blocks live here.
                let b_col = &b.col(j)[..k];
                for (i, ci) in c_col.iter_mut().enumerate().take(m) {
                    let s = Complex64::dot_conj(&a.col(i)[..k], b_col);
                    *ci = ci.mul_add(s, alpha);
                }
            }
            Op::Transpose | Op::Adjoint => {
                // op(A)[i, l] = (conj?) A[l, i]: column i of A is contiguous.
                for (i, ci) in c_col.iter_mut().enumerate().take(m) {
                    let a_col = a.col(i);
                    let mut s = Complex64::ZERO;
                    if op_a == Op::Transpose {
                        for (l, &ali) in a_col.iter().enumerate().take(k) {
                            s = s.mul_add(ali, op_b.at(b, l, j));
                        }
                    } else {
                        for (l, &ali) in a_col.iter().enumerate().take(k) {
                            s = s.mul_add(ali.conj(), op_b.at(b, l, j));
                        }
                    }
                    *ci = ci.mul_add(s, alpha);
                }
            }
        }
    }
}

/// Raw output pointer shared across tile tasks.
///
/// Safety contract: every task writes a distinct rectangle of `C`
/// (disjoint `[i0, i1) × [j0, j1)` ranges), so concurrent writes never
/// alias.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Splits `total` into `parts` nearly equal strips aligned to `quantum`.
fn strips(total: usize, parts: usize, quantum: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, total.div_ceil(quantum).max(1));
    let per = total.div_ceil(parts).div_ceil(quantum) * quantum;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    while lo < total {
        let hi = (lo + per).min(total);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Cache-blocked, register-tiled, tile-parallel path.
fn gemm_tiled(
    alpha: Complex64,
    a: ZMatRef<'_>,
    op_a: Op,
    b: ZMatRef<'_>,
    op_b: Op,
    beta: Complex64,
    c: &mut ZMatMut<'_>,
) {
    let (m, k) = op_a.shape_of(a.rows(), a.cols());
    let n = c.cols();
    let c_ld = c.ld();
    let c_ptr = SendPtr(c.as_mut_ptr());
    // Resolve the dispatched microkernel once per product; the tile tasks
    // capture it so rayon workers never re-read the selection mid-flight.
    let kern = active_kernel();
    let (mr, nr) = (kern.mr, kern.nr);

    // 2-D task grid over C: prefer column strips (contiguous in memory),
    // add row strips when the matrix is tall and columns are scarce.
    let parallel = m * n * k >= PAR_MNK;
    let workers = if parallel { rayon::current_num_threads() } else { 1 };
    let target = workers * 2;
    let col_parts = target.min(n.div_ceil(2 * nr)).max(1);
    let row_parts =
        if col_parts >= target { 1 } else { target.div_ceil(col_parts).min(m.div_ceil(MC)) };
    let col_strips = strips(n, col_parts, nr);
    let row_strips = strips(m, row_parts, mr);
    let mut tasks: Vec<(usize, usize, usize, usize)> = Vec::new();
    for &(j0, j1) in &col_strips {
        for &(i0, i1) in &row_strips {
            tasks.push((i0, i1, j0, j1));
        }
    }

    let run_tile = |&(i0, i1, j0, j1): &(usize, usize, usize, usize)| {
        // Per-task packing buffers (planar split re/im), sized to the
        // panels this task actually touches — a small product must not pay
        // for full `MC×KC`/`KC×NC` blocks.
        let kc_cap = KC.min(k);
        let nc_cap = NC.min(j1 - j0).div_ceil(nr) * nr;
        let mc_cap = MC.min(i1 - i0).div_ceil(mr) * mr;
        let mut b_re = vec![0.0f64; nc_cap * kc_cap];
        let mut b_im = vec![0.0f64; nc_cap * kc_cap];
        let mut a_re = vec![0.0f64; mc_cap * kc_cap];
        let mut a_im = vec![0.0f64; mc_cap * kc_cap];
        // Accumulator blocks live outside the micro-tile loops: every
        // kernel fully overwrites its mr×nr corner and write_tile reads
        // only that corner, so re-zeroing per tile would be pure waste.
        let mut acc_re: Acc = [[0.0; MR_MAX]; NR_MAX];
        let mut acc_im: Acc = [[0.0; MR_MAX]; NR_MAX];
        let mut jc = j0;
        while jc < j1 {
            let nc_eff = NC.min(j1 - jc);
            let n_micro_b = nc_eff.div_ceil(nr);
            let mut p0 = 0usize;
            let mut first_panel = true;
            while p0 < k {
                let kc = KC.min(k - p0);
                pack_b(b, op_b, nr, p0, kc, jc, nc_eff, &mut b_re, &mut b_im);
                let mut ic = i0;
                while ic < i1 {
                    let mc = MC.min(i1 - ic);
                    pack_a(a, op_a, mr, ic, mc, p0, kc, &mut a_re, &mut a_im);
                    for pm in 0..mc.div_ceil(mr) {
                        let ap_re = &a_re[pm * kc * mr..(pm + 1) * kc * mr];
                        let ap_im = &a_im[pm * kc * mr..(pm + 1) * kc * mr];
                        let mr_eff = mr.min(mc - pm * mr);
                        for qm in 0..n_micro_b {
                            let bp_re = &b_re[qm * kc * nr..(qm + 1) * kc * nr];
                            let bp_im = &b_im[qm * kc * nr..(qm + 1) * kc * nr];
                            let nr_eff = nr.min(nc_eff - qm * nr);
                            kern.run(kc, ap_re, ap_im, bp_re, bp_im, &mut acc_re, &mut acc_im);
                            // Safety: this task owns rows [i0, i1) × cols
                            // [j0, j1) of C exclusively (disjoint task grid).
                            unsafe {
                                write_tile(
                                    c_ptr,
                                    c_ld,
                                    ic + pm * mr,
                                    jc + qm * nr,
                                    mr_eff,
                                    nr_eff,
                                    &acc_re,
                                    &acc_im,
                                    alpha,
                                    beta,
                                    first_panel,
                                );
                            }
                        }
                    }
                    ic += mc;
                }
                p0 += kc;
                first_panel = false;
            }
            jc += nc_eff;
        }
    };

    if parallel && tasks.len() > 1 {
        tasks.par_iter().for_each(run_tile);
    } else {
        for t in &tasks {
            run_tile(t);
        }
    }
}

/// Packs `op(A)[ic..ic+mc, p0..p0+kc]` into planar `mr`-row micro-panels
/// (`mr` is the dispatched kernel's tile height), zero-padding the row
/// remainder. Layout: element `(i, l)` of micro-panel `p` lives at
/// `(p·kc + l)·mr + i`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: ZMatRef<'_>,
    op: Op,
    mr: usize,
    ic: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    a_re: &mut [f64],
    a_im: &mut [f64],
) {
    for pm in 0..mc.div_ceil(mr) {
        let mr_eff = mr.min(mc - pm * mr);
        let base = pm * kc * mr;
        match op {
            Op::None => {
                for l in 0..kc {
                    let col = a.col(p0 + l);
                    let dst = base + l * mr;
                    for i in 0..mr_eff {
                        let z = col[ic + pm * mr + i];
                        a_re[dst + i] = z.re;
                        a_im[dst + i] = z.im;
                    }
                    for i in mr_eff..mr {
                        a_re[dst + i] = 0.0;
                        a_im[dst + i] = 0.0;
                    }
                }
            }
            Op::Transpose | Op::Adjoint => {
                // op(A)[gi, gl] = (conj?) A[gl, gi]: walk columns of A
                // (contiguous in l) one micro-row at a time.
                let sign = if op == Op::Adjoint { -1.0 } else { 1.0 };
                for i in 0..mr {
                    if i < mr_eff {
                        let col = a.col(ic + pm * mr + i);
                        for l in 0..kc {
                            let z = col[p0 + l];
                            a_re[base + l * mr + i] = z.re;
                            a_im[base + l * mr + i] = sign * z.im;
                        }
                    } else {
                        for l in 0..kc {
                            a_re[base + l * mr + i] = 0.0;
                            a_im[base + l * mr + i] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Packs `op(B)[p0..p0+kc, j0..j0+nc]` into planar `nr`-column
/// micro-panels (`nr` is the dispatched kernel's tile width),
/// zero-padding the column remainder. Layout: element `(l, j)` of
/// micro-panel `q` lives at `(q·kc + l)·nr + j`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: ZMatRef<'_>,
    op: Op,
    nr: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    b_re: &mut [f64],
    b_im: &mut [f64],
) {
    for qm in 0..nc.div_ceil(nr) {
        let nr_eff = nr.min(nc - qm * nr);
        let base = qm * kc * nr;
        match op {
            Op::None => {
                for j in 0..nr {
                    if j < nr_eff {
                        let col = b.col(j0 + qm * nr + j);
                        for l in 0..kc {
                            let z = col[p0 + l];
                            b_re[base + l * nr + j] = z.re;
                            b_im[base + l * nr + j] = z.im;
                        }
                    } else {
                        for l in 0..kc {
                            b_re[base + l * nr + j] = 0.0;
                            b_im[base + l * nr + j] = 0.0;
                        }
                    }
                }
            }
            Op::Transpose | Op::Adjoint => {
                // op(B)[gl, gj] = (conj?) B[gj, gl]: column gj of B is the
                // contiguous direction — here that is the l index.
                let sign = if op == Op::Adjoint { -1.0 } else { 1.0 };
                for l in 0..kc {
                    let dst = base + l * nr;
                    for j in 0..nr_eff {
                        let z = b.at(j0 + qm * nr + j, p0 + l);
                        b_re[dst + j] = z.re;
                        b_im[dst + j] = sign * z.im;
                    }
                    for j in nr_eff..nr {
                        b_re[dst + j] = 0.0;
                        b_im[dst + j] = 0.0;
                    }
                }
            }
        }
    }
}

/// Writes one `mr_eff × nr_eff` accumulator tile into `C` at `(gi, gj)`,
/// applying `α` and (on the first k-panel only) `β`. The accumulators are
/// the full [`Acc`] blocks the dispatched microkernel filled — only the
/// `mr_eff × nr_eff` corner is read.
///
/// # Safety
/// The caller must own the written rectangle exclusively and `gi`/`gj`
/// must be in bounds for the `ld`-strided output buffer.
#[allow(clippy::too_many_arguments)]
unsafe fn write_tile(
    c_ptr: SendPtr,
    ld: usize,
    gi: usize,
    gj: usize,
    mr_eff: usize,
    nr_eff: usize,
    acc_re: &Acc,
    acc_im: &Acc,
    alpha: Complex64,
    beta: Complex64,
    first_panel: bool,
) {
    for j in 0..nr_eff {
        let col_base = c_ptr.0.add((gj + j) * ld + gi);
        for i in 0..mr_eff {
            let acc = c64(acc_re[j][i], acc_im[j][i]);
            let dst = col_base.add(i);
            let updated = if first_panel {
                if beta == Complex64::ZERO {
                    alpha * acc
                } else {
                    (beta * *dst).mul_add(alpha, acc)
                }
            } else {
                (*dst).mul_add(alpha, acc)
            };
            *dst = updated;
        }
    }
}

/// Convenience product `A·B` (the `&a * &b` operator routes here).
pub fn matmul(a: &ZMat, b: &ZMat) -> ZMat {
    let mut c = ZMat::zeros(a.rows(), b.cols());
    gemm(Complex64::ONE, a, Op::None, b, Op::None, Complex64::ZERO, &mut c);
    c
}

/// `y ← α·op(A)·x + β·y` (BLAS-2), reading `A` through a borrowed view —
/// no operand is ever materialized.
pub fn gemv(
    alpha: Complex64,
    a: &ZMat,
    op_a: Op,
    x: &[Complex64],
    beta: Complex64,
    y: &mut [Complex64],
) {
    let (m, k) = op_a.shape(a);
    assert_eq!(x.len(), k, "gemv x length");
    assert_eq!(y.len(), m, "gemv y length");
    let av = a.view();
    if beta == Complex64::ZERO {
        y.fill(Complex64::ZERO);
    } else if beta != Complex64::ONE {
        for z in y.iter_mut() {
            *z *= beta;
        }
    }
    match op_a {
        Op::None => {
            // Column sweep: contiguous AXPYs over columns of A.
            for (l, &xl) in x.iter().enumerate() {
                let f = alpha * xl;
                if f == Complex64::ZERO {
                    continue;
                }
                for (yi, &ail) in y.iter_mut().zip(av.col(l)) {
                    *yi = yi.mul_add(ail, f);
                }
            }
        }
        Op::Transpose => {
            // y_i = α·Σ_l A[l, i]·x_l: one contiguous dot per output.
            for (i, yi) in y.iter_mut().enumerate() {
                let mut s = Complex64::ZERO;
                for (&ali, &xl) in av.col(i).iter().zip(x) {
                    s = s.mul_add(ali, xl);
                }
                *yi = yi.mul_add(s, alpha);
            }
        }
        Op::Adjoint => {
            for (i, yi) in y.iter_mut().enumerate() {
                let mut s = Complex64::ZERO;
                for (&ali, &xl) in av.col(i).iter().zip(x) {
                    s = s.mul_add(ali.conj(), xl);
                }
                *yi = yi.mul_add(s, alpha);
            }
        }
    }
    flops_add(8 * (m as u64) * (k as u64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::zmat::alloc_count;

    fn naive(a: &ZMat, b: &ZMat) -> ZMat {
        let mut c = ZMat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = Complex64::ZERO;
                for l in 0..a.cols() {
                    s += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn apply(op: Op, m: &ZMat) -> ZMat {
        match op {
            Op::None => m.clone(),
            Op::Transpose => m.transpose(),
            Op::Adjoint => m.adjoint(),
        }
    }

    #[test]
    fn matches_naive_small() {
        let a = ZMat::random(7, 5, 1);
        let b = ZMat::random(5, 9, 2);
        assert!(matmul(&a, &b).max_diff(&naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn matches_naive_large_parallel_path() {
        let a = ZMat::random(130, 140, 3);
        let b = ZMat::random(140, 150, 4);
        assert!(matmul(&a, &b).max_diff(&naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn all_nine_op_combinations_match_naive() {
        // Small shapes (direct, non-packing path) with every op pairing
        // dimensionally distinct: op(A) is 13×17, op(B) is 17×11. The
        // packed/tiled path gets the same sweep in the test below.
        let ops = [Op::None, Op::Transpose, Op::Adjoint];
        for &op_a in &ops {
            for &op_b in &ops {
                let a = if op_a == Op::None {
                    ZMat::random(13, 17, 5)
                } else {
                    ZMat::random(17, 13, 5)
                };
                let b = if op_b == Op::None {
                    ZMat::random(17, 11, 6)
                } else {
                    ZMat::random(11, 17, 6)
                };
                let mut c = ZMat::zeros(13, 11);
                gemm(Complex64::ONE, &a, op_a, &b, op_b, Complex64::ZERO, &mut c);
                let expected = naive(&apply(op_a, &a), &apply(op_b, &b));
                assert!(
                    c.max_diff(&expected) < 1e-12,
                    "op_a {op_a:?} op_b {op_b:?}: {:.2e}",
                    c.max_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn all_nine_op_combinations_match_naive_tiled_path() {
        // Big enough to hit the packed/tiled path (m·n·k ≥ SMALL_MNK)
        // with non-multiples of every block size.
        let ops = [Op::None, Op::Transpose, Op::Adjoint];
        let (m, n, k) = (67, 59, 97);
        for &op_a in &ops {
            for &op_b in &ops {
                let a =
                    if op_a == Op::None { ZMat::random(m, k, 7) } else { ZMat::random(k, m, 7) };
                let b =
                    if op_b == Op::None { ZMat::random(k, n, 8) } else { ZMat::random(n, k, 8) };
                let mut c = ZMat::zeros(m, n);
                gemm(Complex64::ONE, &a, op_a, &b, op_b, Complex64::ZERO, &mut c);
                let expected = naive(&apply(op_a, &a), &apply(op_b, &b));
                assert!(
                    c.max_diff(&expected) < 1e-10,
                    "op_a {op_a:?} op_b {op_b:?}: {:.2e}",
                    c.max_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn awkward_shapes_match_naive() {
        // 1×1, prime dims, tall-skinny, short-wide, k = 1 — the shapes
        // that stress tile-remainder handling.
        let shapes = [
            (1usize, 1usize, 1usize),
            (2, 3, 5),
            (31, 37, 29),
            (97, 2, 53),
            (2, 97, 53),
            (200, 3, 1),
            (64, 64, 64),
            (65, 63, 193),
        ];
        for &(m, n, k) in &shapes {
            let a = ZMat::random(m, k, (m * 1000 + k) as u64);
            let b = ZMat::random(k, n, (k * 1000 + n) as u64);
            let prod = matmul(&a, &b);
            assert!(
                prod.max_diff(&naive(&a, &b)) < 1e-10,
                "shape {m}x{n}x{k}: {:.2e}",
                prod.max_diff(&naive(&a, &b))
            );
        }
    }

    #[test]
    #[cfg(not(feature = "seed-gemm"))] // the A/B baseline clones by design
    fn op_none_path_performs_zero_matrix_allocations() {
        // The zero-copy claim: with borrowed views and a preallocated
        // output, an Op::None product must not allocate a single ZMat on
        // this thread (packing uses raw f64 scratch, not matrices).
        let a = ZMat::random(96, 96, 21);
        let b = ZMat::random(96, 96, 22);
        let mut c = ZMat::zeros(96, 96);
        let before = alloc_count();
        gemm(Complex64::ONE, &a, Op::None, &b, Op::None, Complex64::ZERO, &mut c);
        assert_eq!(alloc_count(), before, "Op::None gemm allocated a ZMat");
        // Transposed operands also stay allocation-free now: transforms
        // are folded into packing.
        gemm(Complex64::ONE, &a, Op::Adjoint, &b, Op::Transpose, Complex64::ZERO, &mut c);
        assert_eq!(alloc_count(), before, "packed transform path allocated a ZMat");
        // gemv too.
        let x = vec![Complex64::ONE; 96];
        let mut y = vec![Complex64::ZERO; 96];
        gemv(Complex64::ONE, &a, Op::Adjoint, &x, Complex64::ZERO, &mut y);
        assert_eq!(alloc_count(), before, "gemv materialized its operand");
    }

    #[test]
    fn transpose_and_adjoint_ops() {
        let a = ZMat::random(6, 4, 5);
        let b = ZMat::random(6, 3, 6);
        // C = Aᴴ B
        let mut c = ZMat::zeros(4, 3);
        gemm(Complex64::ONE, &a, Op::Adjoint, &b, Op::None, Complex64::ZERO, &mut c);
        assert!(c.max_diff(&naive(&a.adjoint(), &b)) < 1e-12);
        // C = Aᵀ B
        let mut ct = ZMat::zeros(4, 3);
        gemm(Complex64::ONE, &a, Op::Transpose, &b, Op::None, Complex64::ZERO, &mut ct);
        assert!(ct.max_diff(&naive(&a.transpose(), &b)) < 1e-12);
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = ZMat::random(5, 5, 7);
        let b = ZMat::random(5, 5, 8);
        let c0 = ZMat::random(5, 5, 9);
        let alpha = c64(0.5, -1.0);
        let beta = c64(2.0, 0.25);
        let mut c = c0.clone();
        gemm(alpha, &a, Op::None, &b, Op::None, beta, &mut c);
        let expected = &naive(&a, &b).scaled(alpha) + &c0.scaled(beta);
        assert!(c.max_diff(&expected) < 1e-12);
    }

    #[test]
    fn alpha_beta_accumulation_tiled_path() {
        let (m, n, k) = (70, 66, 130);
        let a = ZMat::random(m, k, 17);
        let b = ZMat::random(k, n, 18);
        let c0 = ZMat::random(m, n, 19);
        let alpha = c64(0.5, -1.0);
        let beta = c64(2.0, 0.25);
        let mut c = c0.clone();
        gemm(alpha, &a, Op::None, &b, Op::None, beta, &mut c);
        let expected = &naive(&a, &b).scaled(alpha) + &c0.scaled(beta);
        assert!(c.max_diff(&expected) < 1e-10, "{:.2e}", c.max_diff(&expected));
    }

    #[test]
    #[cfg(not(feature = "seed-gemm"))] // the A/B baseline clones by design
    fn block_views_multiply_without_copying() {
        let big_a = ZMat::random(40, 40, 30);
        let big_b = ZMat::random(40, 40, 31);
        let av = big_a.block_view(3, 5, 20, 17);
        let bv = big_b.block_view(1, 2, 17, 22);
        let mut c = ZMat::zeros(20, 22);
        let before = alloc_count();
        gemm_view(Complex64::ONE, av, Op::None, bv, Op::None, Complex64::ZERO, &mut c);
        assert_eq!(alloc_count(), before);
        let expected = naive(&big_a.block(3, 5, 20, 17), &big_b.block(1, 2, 17, 22));
        assert!(c.max_diff(&expected) < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let a = ZMat::random(8, 8, 10);
        let id = ZMat::identity(8);
        assert!(matmul(&a, &id).max_diff(&a) < 1e-14);
        assert!(matmul(&id, &a).max_diff(&a) < 1e-14);
    }

    #[test]
    fn gemv_matches_matvec() {
        let a = ZMat::random(6, 4, 11);
        let x: Vec<Complex64> = (0..4).map(|i| c64(i as f64 + 0.5, -1.0)).collect();
        let mut y = vec![Complex64::ZERO; 6];
        gemv(Complex64::ONE, &a, Op::None, &x, Complex64::ZERO, &mut y);
        let reference = a.matvec(&x);
        for (u, v) in y.iter().zip(&reference) {
            assert!((*u - *v).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_transposed_ops_match_materialized() {
        let a = ZMat::random(6, 4, 12);
        let x: Vec<Complex64> = (0..6).map(|i| c64(0.3 * i as f64, 1.0 - i as f64)).collect();
        for (op, mat) in [(Op::Transpose, a.transpose()), (Op::Adjoint, a.adjoint())] {
            let mut y = vec![c64(1.0, -2.0); 4];
            let y0 = y.clone();
            let alpha = c64(0.7, 0.1);
            let beta = c64(-0.3, 0.6);
            gemv(alpha, &a, op, &x, beta, &mut y);
            let mut reference = mat.matvec(&x);
            for (r, y0i) in reference.iter_mut().zip(&y0) {
                *r = *r * alpha + *y0i * beta;
            }
            for (u, v) in y.iter().zip(&reference) {
                assert!((*u - *v).abs() < 1e-12, "op {op:?}");
            }
        }
    }

    #[test]
    fn gemm_counts_flops() {
        let before = crate::flops::flops_total();
        let a = ZMat::random(10, 12, 1);
        let b = ZMat::random(12, 14, 2);
        let _ = matmul(&a, &b);
        assert!(crate::flops::flops_total() - before >= counts::zgemm(10, 14, 12));
    }
}
