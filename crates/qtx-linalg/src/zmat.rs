//! Column-major dense complex matrices.
//!
//! `ZMat` is the single dense container used across the workspace: FEAST
//! subspaces, SplitSolve block operands, reduced Rayleigh–Ritz systems and
//! lead coupling blocks are all `ZMat`s. Storage is column-major (like
//! LAPACK) so the factorization kernels translate directly.

use crate::complex::{c64, Complex64};
use crate::rng::Pcg64;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

thread_local! {
    /// Fresh `ZMat` heap allocations made by this thread (see
    /// [`alloc_count`]). Thread-local so concurrent tests measuring
    /// allocation deltas don't pollute each other.
    static ZMAT_ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Bytes currently held by live `ZMat` buffers on this thread (see
    /// [`live_bytes`]).
    static ZMAT_LIVE_BYTES: Cell<usize> = const { Cell::new(0) };
    /// High-water mark of [`ZMAT_LIVE_BYTES`] since the last
    /// [`reset_peak_bytes`].
    static ZMAT_PEAK_BYTES: Cell<usize> = const { Cell::new(0) };
}

/// Number of fresh `ZMat` buffer allocations (zeros/clones/materialized
/// transforms) performed by the current thread since it started. Take a
/// delta around a kernel call to verify its zero-copy claims — the tiled
/// `gemm` must not allocate on the `Op::None` fast path.
pub fn alloc_count() -> u64 {
    ZMAT_ALLOCS.with(|c| c.get())
}

#[inline]
fn note_alloc() {
    ZMAT_ALLOCS.with(|c| c.set(c.get() + 1));
}

/// Bytes currently held by live `ZMat` backing buffers on this thread
/// (capacity, not length — a recycled buffer counts in full). Buffers
/// parked in a [`crate::workspace::Workspace`] pool as raw `Vec`s are
/// *not* counted: the counter measures the matrices an algorithm holds
/// simultaneously, which is the footprint that scales with device size.
pub fn live_bytes() -> usize {
    ZMAT_LIVE_BYTES.with(|c| c.get())
}

/// High-water mark of [`live_bytes`] on this thread since the last
/// [`reset_peak_bytes`]. This is the counter the sparsity acceptance
/// tests assert on: a boundary-block-only transmission solve must peak at
/// `O(bandwidth · n)` bytes while a dense-staged solve peaks at `O(n²)`.
pub fn peak_bytes() -> usize {
    ZMAT_PEAK_BYTES.with(|c| c.get())
}

/// Resets the peak tracker to the current live footprint, so a subsequent
/// [`peak_bytes`] reads the high-water mark of the enclosed region only.
pub fn reset_peak_bytes() {
    ZMAT_PEAK_BYTES.with(|p| p.set(live_bytes()));
}

#[inline]
fn note_bytes_grow(bytes: usize) {
    if bytes == 0 {
        return;
    }
    ZMAT_LIVE_BYTES.with(|l| {
        let live = l.get() + bytes;
        l.set(live);
        ZMAT_PEAK_BYTES.with(|p| {
            if live > p.get() {
                p.set(live);
            }
        });
    });
}

#[inline]
fn note_bytes_shrink(bytes: usize) {
    // Saturating: matrices materialized outside the counted constructors
    // (e.g. serde deserialization) release bytes they never registered.
    ZMAT_LIVE_BYTES.with(|l| l.set(l.get().saturating_sub(bytes)));
}

#[inline]
fn buf_bytes(data: &Vec<Complex64>) -> usize {
    data.capacity() * std::mem::size_of::<Complex64>()
}

/// Dense complex matrix, column-major.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct ZMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Drop for ZMat {
    fn drop(&mut self) {
        note_bytes_shrink(buf_bytes(&self.data));
    }
}

impl Clone for ZMat {
    fn clone(&self) -> Self {
        note_alloc();
        let data = self.data.clone();
        note_bytes_grow(buf_bytes(&data));
        ZMat { rows: self.rows, cols: self.cols, data }
    }

    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        let before = buf_bytes(&self.data);
        if self.data.capacity() < source.data.len() {
            note_alloc();
        }
        self.data.clear();
        self.data.extend_from_slice(&source.data);
        // `clear` + `extend_from_slice` never shrinks capacity.
        note_bytes_grow(buf_bytes(&self.data) - before);
    }
}

impl ZMat {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        note_alloc();
        let data = vec![Complex64::ZERO; rows * cols];
        note_bytes_grow(buf_bytes(&data));
        ZMat { rows, cols, data }
    }

    /// Zero-size placeholder matrix (0 × 0). Performs **no** heap
    /// allocation and therefore does not count against [`alloc_count`] —
    /// the factorization structs use it for optional payloads (e.g. the
    /// compact-WY `T` store of an unblocked QR) so zero-allocation warm
    /// loops stay zero-allocation.
    pub fn empty() -> Self {
        ZMat { rows: 0, cols: 0, data: Vec::new() }
    }

    /// Overwrites every entry with the same deterministic uniform stream
    /// [`ZMat::random`] produces for this `seed` — the in-place,
    /// pool-friendly counterpart used by the FEAST/Beyn probe matrices.
    pub fn randomize(&mut self, seed: u64) {
        let mut rng = Pcg64::new(seed);
        for j in 0..self.cols {
            for i in 0..self.rows {
                self[(i, j)] = c64(rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0);
            }
        }
    }

    /// Wraps a recycled scratch buffer as a `rows × cols` column-major
    /// matrix without allocating when its capacity suffices (the
    /// [`crate::workspace::Workspace`] recycle path). **Element contents
    /// are unspecified** — whatever the buffer previously held, resized to
    /// `rows·cols`; callers must either overwrite every element or zero it
    /// explicitly. Not a value constructor: use [`ZMat::from_fn`] /
    /// [`ZMat::from_rows`] to build a matrix from data.
    pub fn from_recycled_buffer(rows: usize, cols: usize, mut data: Vec<Complex64>) -> Self {
        if data.capacity() < rows * cols {
            note_alloc();
        }
        // Resize without clearing: only growth beyond the previous length
        // is written here; existing elements keep their stale values.
        data.resize(rows * cols, Complex64::ZERO);
        note_bytes_grow(buf_bytes(&data));
        ZMat { rows, cols, data }
    }

    /// Consumes the matrix, returning its backing buffer for reuse. The
    /// bytes leave the [`live_bytes`] ledger with the matrix; they re-enter
    /// when the buffer is wrapped again via [`ZMat::from_recycled_buffer`].
    pub fn into_vec(self) -> Vec<Complex64> {
        let mut this = std::mem::ManuallyDrop::new(self);
        let data = std::mem::take(&mut this.data);
        note_bytes_shrink(buf_bytes(&data));
        data
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Diagonal matrix from the given entries.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds from a row-major slice of `(re, im)` pairs — handy in tests.
    pub fn from_rows(rows: usize, cols: usize, entries: &[(f64, f64)]) -> Self {
        assert_eq!(entries.len(), rows * cols, "entry count mismatch");
        Self::from_fn(rows, cols, |i, j| {
            let (re, im) = entries[i * cols + j];
            c64(re, im)
        })
    }

    /// Random matrix with entries uniform in the unit square, deterministic
    /// under `seed`. Used for FEAST's `Y_F` matrix of random numbers (Eq. 10).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Pcg64::new(seed);
        Self::from_fn(rows, cols, |_, _| c64(rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0))
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw column-major data.
    #[inline(always)]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable raw column-major data.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Borrow of column `j` as a contiguous slice.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[Complex64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable borrow of column `j`.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [Complex64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two disjoint mutable columns (for in-place rotations).
    pub fn two_cols_mut(&mut self, j0: usize, j1: usize) -> (&mut [Complex64], &mut [Complex64]) {
        assert!(j0 < j1 && j1 < self.cols);
        let (a, b) = self.data.split_at_mut(j1 * self.rows);
        (&mut a[j0 * self.rows..(j0 + 1) * self.rows], &mut b[..self.rows])
    }

    /// Copies the rectangular block with top-left corner `(r0, c0)` and
    /// shape `rows × cols` into a new matrix.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> ZMat {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "block out of range");
        let mut out = ZMat::zeros(rows, cols);
        for j in 0..cols {
            let src = &self.col(c0 + j)[r0..r0 + rows];
            out.col_mut(j).copy_from_slice(src);
        }
        out
    }

    /// Writes `src` into the block with top-left corner `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &ZMat) {
        assert!(r0 + src.rows <= self.rows && c0 + src.cols <= self.cols, "block out of range");
        for j in 0..src.cols {
            let dst_rows = self.rows;
            let dst = &mut self.data[(c0 + j) * dst_rows + r0..(c0 + j) * dst_rows + r0 + src.rows];
            dst.copy_from_slice(src.col(j));
        }
    }

    /// Writes a borrowed view into the block with top-left corner `(r0, c0)`.
    pub fn set_block_view(&mut self, r0: usize, c0: usize, src: ZMatRef<'_>) {
        assert!(r0 + src.rows() <= self.rows && c0 + src.cols() <= self.cols, "block out of range");
        let dst_rows = self.rows;
        for j in 0..src.cols() {
            let dst =
                &mut self.data[(c0 + j) * dst_rows + r0..(c0 + j) * dst_rows + r0 + src.rows()];
            dst.copy_from_slice(src.col(j));
        }
    }

    /// Adds `src` into the block with top-left corner `(r0, c0)`.
    pub fn add_block(&mut self, r0: usize, c0: usize, src: &ZMat) {
        assert!(r0 + src.rows <= self.rows && c0 + src.cols <= self.cols, "block out of range");
        for j in 0..src.cols {
            let dst_rows = self.rows;
            let dst = &mut self.data[(c0 + j) * dst_rows + r0..(c0 + j) * dst_rows + r0 + src.rows];
            for (d, s) in dst.iter_mut().zip(src.col(j)) {
                *d += *s;
            }
        }
    }

    /// Plain transpose.
    pub fn transpose(&self) -> ZMat {
        ZMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate (Hermitian) transpose `Aᴴ`.
    pub fn adjoint(&self) -> ZMat {
        ZMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> ZMat {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z = z.conj();
        }
        out
    }

    /// Scales every entry by a complex scalar.
    pub fn scaled(&self, s: Complex64) -> ZMat {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z *= s;
        }
        out
    }

    /// In-place scaling `self ← s·self` (no allocation, unlike [`Self::scaled`]).
    pub fn scale_assign(&mut self, s: Complex64) {
        for z in self.data.iter_mut() {
            *z *= s;
        }
    }

    /// In-place `self ← self + s·other` (complex AXPY over the whole matrix).
    pub fn axpy(&mut self, s: Complex64, other: &ZMat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (d, o) in self.data.iter_mut().zip(&other.data) {
            *d = d.mul_add(s, *o);
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Max-abs (Chebyshev) norm over entries.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Number of entries whose real or imaginary part is NaN/Inf — the
    /// solver-output health check of the fault-tolerance layer (`fold`
    /// over `abs` silently launders NaN, so this scans parts explicitly).
    pub fn non_finite_count(&self) -> usize {
        self.data.iter().filter(|z| !z.re.is_finite() || !z.im.is_finite()).count()
    }

    /// One-norm (max column sum), the norm used in condition estimates.
    pub fn norm_one(&self) -> f64 {
        (0..self.cols).map(|j| self.col(j).iter().map(|z| z.abs()).sum::<f64>()).fold(0.0, f64::max)
    }

    /// Hermitian deviation `‖A − Aᴴ‖_max`; zero for Hermitian matrices.
    pub fn hermitian_defect(&self) -> f64 {
        assert!(self.is_square());
        let mut worst: f64 = 0.0;
        for j in 0..self.cols {
            for i in 0..=j {
                worst = worst.max((self[(i, j)] - self[(j, i)].conj()).abs());
            }
        }
        worst
    }

    /// Symmetrizes in place: `A ← (A + Aᴴ)/2`.
    pub fn hermitianize(&mut self) {
        assert!(self.is_square());
        for j in 0..self.cols {
            for i in 0..j {
                let avg = (self[(i, j)] + self[(j, i)].conj()).scale(0.5);
                self[(i, j)] = avg;
                self[(j, i)] = avg.conj();
            }
            let d = self[(j, j)];
            self[(j, j)] = c64(d.re, 0.0);
        }
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &ZMat) -> ZMat {
        assert_eq!(self.rows, other.rows);
        let mut out = ZMat::zeros(self.rows, self.cols + other.cols);
        out.set_block(0, 0, self);
        out.set_block(0, self.cols, other);
        out
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![Complex64::ZERO; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == Complex64::ZERO {
                continue;
            }
            for (yi, &aij) in y.iter_mut().zip(self.col(j)) {
                *yi = yi.mul_add(aij, xj);
            }
        }
        crate::flops::flops_add(8 * (self.rows as u64) * (self.cols as u64));
        y
    }

    /// Swap two rows in place (pivoting support).
    pub fn swap_rows(&mut self, i0: usize, i1: usize) {
        if i0 == i1 {
            return;
        }
        for j in 0..self.cols {
            let base = j * self.rows;
            self.data.swap(base + i0, base + i1);
        }
    }

    /// Maximum absolute difference to another matrix.
    pub fn max_diff(&self, other: &ZMat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max)
    }

    /// Borrowed view of the whole matrix (zero-copy).
    #[inline]
    pub fn view(&self) -> ZMatRef<'_> {
        ZMatRef { data: &self.data, rows: self.rows, cols: self.cols, ld: self.rows }
    }

    /// Mutable borrowed view of the whole matrix (zero-copy).
    #[inline]
    pub fn view_mut(&mut self) -> ZMatMut<'_> {
        ZMatMut { rows: self.rows, cols: self.cols, ld: self.rows, data: &mut self.data }
    }

    /// Mutable borrowed view of the rectangular block with top-left corner
    /// `(r0, c0)` — the writable counterpart of [`ZMat::block_view`], used
    /// by the blocked factorization kernels to address panels in place.
    #[inline]
    pub fn block_view_mut(
        &mut self,
        r0: usize,
        c0: usize,
        rows: usize,
        cols: usize,
    ) -> ZMatMut<'_> {
        self.view_mut().sub_mut(r0, c0, rows, cols)
    }

    /// Borrowed view of the rectangular block with top-left corner
    /// `(r0, c0)` and shape `rows × cols` — the zero-copy counterpart of
    /// [`ZMat::block`].
    #[inline]
    pub fn block_view(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> ZMatRef<'_> {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "block view out of range");
        if rows == 0 || cols == 0 {
            return ZMatRef { data: &[], rows, cols, ld: self.rows.max(1) };
        }
        let start = c0 * self.rows + r0;
        let end = (c0 + cols - 1) * self.rows + r0 + rows;
        ZMatRef { data: &self.data[start..end], rows, cols, ld: self.rows }
    }
}

/// Borrowed, possibly strided, column-major matrix view.
///
/// `ZMatRef` is the zero-copy operand type of the tiled [`crate::gemm`]
/// kernels: `ld` (leading dimension, LAPACK's `lda`) is the distance
/// between column starts in `data`, so a view can alias a whole [`ZMat`]
/// (`ld == rows`) or any rectangular sub-block of one (`ld > rows`)
/// without materializing it.
#[derive(Debug, Clone, Copy)]
pub struct ZMatRef<'a> {
    data: &'a [Complex64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a> ZMatRef<'a> {
    /// Wraps a raw column-major slice with an explicit leading dimension.
    pub fn from_slice(data: &'a [Complex64], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows, "leading dimension shorter than a column");
        if cols > 0 {
            assert!(data.len() >= (cols - 1) * ld + rows, "slice too short for view shape");
        }
        ZMatRef { data, rows, cols, ld }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (distance between column starts).
    #[inline(always)]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element at `(i, j)` (debug-asserted bounds).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Borrow of column `j` as a contiguous slice of length `rows`.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &'a [Complex64] {
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Sub-view of this view (offsets relative to the view's origin).
    pub fn sub(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> ZMatRef<'a> {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "sub-view out of range");
        if rows == 0 || cols == 0 {
            return ZMatRef { data: &[], rows, cols, ld: self.ld.max(1) };
        }
        let start = c0 * self.ld + r0;
        let end = (c0 + cols - 1) * self.ld + r0 + rows;
        ZMatRef { data: &self.data[start..end], rows, cols, ld: self.ld }
    }

    /// Materializes the view into an owned matrix (allocates).
    pub fn to_owned(&self) -> ZMat {
        let mut out = ZMat::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            out.col_mut(j).copy_from_slice(self.col(j));
        }
        out
    }
}

/// Borrowed, possibly strided, **mutable** column-major matrix view.
///
/// The writable counterpart of [`ZMatRef`]: the blocked LU/LDLᴴ kernels and
/// [`crate::trsm`] solve panels of a larger matrix in place through this
/// type, and [`crate::gemm::gemm_into`] accumulates trailing updates into
/// it without the output ever being a full owned matrix.
#[derive(Debug)]
pub struct ZMatMut<'a> {
    data: &'a mut [Complex64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a> ZMatMut<'a> {
    /// Wraps a raw column-major slice with an explicit leading dimension.
    pub fn from_slice(data: &'a mut [Complex64], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows, "leading dimension shorter than a column");
        if cols > 0 {
            assert!(data.len() >= (cols - 1) * ld + rows, "slice too short for view shape");
        }
        ZMatMut { data, rows, cols, ld }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (distance between column starts).
    #[inline(always)]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Reborrows as a shorter-lived mutable view (lets a caller pass the
    /// same view to several consuming calls in sequence).
    #[inline]
    pub fn rb(&mut self) -> ZMatMut<'_> {
        ZMatMut { data: self.data, rows: self.rows, cols: self.cols, ld: self.ld }
    }

    /// Read-only view of the same block.
    #[inline]
    pub fn as_ref(&self) -> ZMatRef<'_> {
        ZMatRef { data: self.data, rows: self.rows, cols: self.cols, ld: self.ld }
    }

    /// Element at `(i, j)`.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Mutable element at `(i, j)`.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.ld + i]
    }

    /// Borrow of column `j` as a contiguous slice of length `rows`.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[Complex64] {
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Mutable borrow of column `j`.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [Complex64] {
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Two disjoint mutable columns (`j0 < j1`).
    pub fn two_cols_mut(&mut self, j0: usize, j1: usize) -> (&mut [Complex64], &mut [Complex64]) {
        assert!(j0 < j1 && j1 < self.cols);
        let (a, b) = self.data.split_at_mut(j1 * self.ld);
        (&mut a[j0 * self.ld..j0 * self.ld + self.rows], &mut b[..self.rows])
    }

    /// `K` consecutive disjoint mutable columns starting at `j0` — the
    /// register-blocked substitution sweeps in [`crate::trsm`] and
    /// [`crate::trmm`] update a panel of right-hand-side columns per pass
    /// over the triangle, sharing each loaded `A` column across the panel.
    /// Columns of a column-major view occupy disjoint slice ranges, so the
    /// split is safe and allocation-free.
    pub fn cols_mut_array<const K: usize>(&mut self, j0: usize) -> [&mut [Complex64]; K] {
        assert!(K > 0 && j0 + K <= self.cols, "column panel out of range");
        let (rows, ld) = (self.rows, self.ld);
        let mut rest: &mut [Complex64] = &mut self.data[j0 * ld..];
        std::array::from_fn(|_| {
            let r = std::mem::take(&mut rest);
            let cut = ld.min(r.len());
            let (col, tail) = r.split_at_mut(cut);
            rest = tail;
            &mut col[..rows]
        })
    }

    /// Consuming sub-view (offsets relative to this view's origin).
    pub fn sub_mut(self, r0: usize, c0: usize, rows: usize, cols: usize) -> ZMatMut<'a> {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "sub-view out of range");
        if rows == 0 || cols == 0 {
            return ZMatMut { data: &mut [], rows, cols, ld: self.ld.max(1) };
        }
        let start = c0 * self.ld + r0;
        let end = (c0 + cols - 1) * self.ld + r0 + rows;
        ZMatMut { data: &mut self.data[start..end], rows, cols, ld: self.ld }
    }

    /// Splits at column `j` into the views of columns `0..j` and `j..cols`
    /// — the aliasing-free split the right-side [`crate::trsm`] and the
    /// blocked factorizations build on (columns of a column-major matrix
    /// occupy disjoint slice ranges).
    pub fn split_at_col(self, j: usize) -> (ZMatMut<'a>, ZMatMut<'a>) {
        assert!(j <= self.cols, "split column out of range");
        let (rows, cols, ld) = (self.rows, self.cols, self.ld);
        if j == 0 {
            return (ZMatMut { data: &mut [], rows, cols: 0, ld }, self);
        }
        if j == cols {
            return (self, ZMatMut { data: &mut [], rows, cols: 0, ld });
        }
        let (left, right) = self.data.split_at_mut(j * ld);
        (
            ZMatMut { data: left, rows, cols: j, ld },
            ZMatMut { data: right, rows, cols: cols - j, ld },
        )
    }

    /// Raw mutable pointer to the first element (for the tiled gemm's
    /// disjoint-tile writers).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut Complex64 {
        self.data.as_mut_ptr()
    }

    /// Whole backing slice when the view is dense (`ld == rows`), letting
    /// bulk operations skip the per-column loop.
    #[inline]
    pub fn contiguous_mut(&mut self) -> Option<&mut [Complex64]> {
        if self.ld == self.rows || self.cols <= 1 {
            Some(&mut self.data[..self.rows * self.cols])
        } else {
            None
        }
    }

    /// Copies `src` (same shape) into this view.
    pub fn copy_from_view(&mut self, src: ZMatRef<'_>) {
        assert_eq!((self.rows, self.cols), (src.rows(), src.cols()), "copy shape mismatch");
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }
}

impl Index<(usize, usize)> for ZMat {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for ZMat {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl Add for &ZMat {
    type Output = ZMat;
    fn add(self, rhs: &ZMat) -> ZMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (d, s) in out.data.iter_mut().zip(&rhs.data) {
            *d += *s;
        }
        out
    }
}

impl Sub for &ZMat {
    type Output = ZMat;
    fn sub(self, rhs: &ZMat) -> ZMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (d, s) in out.data.iter_mut().zip(&rhs.data) {
            *d -= *s;
        }
        out
    }
}

impl Neg for &ZMat {
    type Output = ZMat;
    fn neg(self) -> ZMat {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z = -*z;
        }
        out
    }
}

impl Mul for &ZMat {
    type Output = ZMat;
    fn mul(self, rhs: &ZMat) -> ZMat {
        crate::gemm::matmul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_ledger_tracks_live_and_peak() {
        let sz = std::mem::size_of::<Complex64>();
        let live0 = live_bytes();
        reset_peak_bytes();
        {
            let a = ZMat::zeros(8, 8);
            assert_eq!(live_bytes(), live0 + 64 * sz);
            let b = a.clone();
            assert_eq!(live_bytes(), live0 + 128 * sz);
            assert!(peak_bytes() >= live0 + 128 * sz);
            // Moving the buffer out hands the bytes back to the pool side
            // of the ledger; rewrapping re-registers them.
            let buf = b.into_vec();
            assert_eq!(live_bytes(), live0 + 64 * sz);
            let c = ZMat::from_recycled_buffer(8, 8, buf);
            assert_eq!(live_bytes(), live0 + 128 * sz);
            drop(c);
        }
        assert_eq!(live_bytes(), live0);
        // Peak survives the drops until explicitly reset.
        assert!(peak_bytes() >= live0 + 128 * sz);
        reset_peak_bytes();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    fn construction_and_indexing() {
        let m = ZMat::from_fn(3, 2, |i, j| c64(i as f64, j as f64));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], c64(2.0, 1.0));
        let id = ZMat::identity(4);
        assert_eq!(id.trace(), c64(4.0, 0.0));
    }

    #[test]
    fn block_roundtrip() {
        let m = ZMat::random(6, 6, 7);
        let b = m.block(1, 2, 3, 4);
        let mut n = ZMat::zeros(6, 6);
        n.set_block(1, 2, &b);
        assert_eq!(n.block(1, 2, 3, 4), b);
        assert_eq!(n[(0, 0)], Complex64::ZERO);
    }

    #[test]
    fn adjoint_involution() {
        let m = ZMat::random(4, 3, 11);
        assert_eq!(m.adjoint().adjoint(), m);
        assert_eq!(m.adjoint().rows(), 3);
    }

    #[test]
    fn hermitianize_makes_hermitian() {
        let mut m = ZMat::random(5, 5, 3);
        assert!(m.hermitian_defect() > 0.1);
        m.hermitianize();
        assert!(m.hermitian_defect() < 1e-15);
    }

    #[test]
    fn norms_agree_on_identity() {
        let id = ZMat::identity(9);
        assert!((id.norm_fro() - 3.0).abs() < 1e-15);
        assert!((id.norm_max() - 1.0).abs() < 1e-15);
        assert!((id.norm_one() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn matvec_identity_is_noop() {
        let id = ZMat::identity(5);
        let x: Vec<Complex64> = (0..5).map(|i| c64(i as f64, -(i as f64))).collect();
        let y = id.matvec(&x);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-15);
        }
    }

    #[test]
    fn swap_rows_permutes() {
        let mut m = ZMat::from_fn(3, 3, |i, _| c64(i as f64, 0.0));
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)], c64(2.0, 0.0));
        assert_eq!(m[(2, 0)], c64(0.0, 0.0));
    }

    #[test]
    fn hcat_shapes() {
        let a = ZMat::zeros(3, 2);
        let b = ZMat::identity(3);
        let c = a.hcat(&b);
        assert_eq!((c.rows(), c.cols()), (3, 5));
        assert_eq!(c[(1, 3)], Complex64::ONE);
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(ZMat::random(4, 4, 42), ZMat::random(4, 4, 42));
        assert_ne!(ZMat::random(4, 4, 42), ZMat::random(4, 4, 43));
    }
}
