//! Runtime-dispatched complex microkernels (`std::arch` SIMD + scalar).
//!
//! The packed gemm path in [`crate::gemm`] bottoms out in one inner
//! routine: an `MR×NR` register tile accumulating `Σ_l a(i,l)·b(l,j)`
//! over a pair of planar (split re/im) micro-panels. This module owns
//! that routine and selects the widest implementation the host supports
//! **once, at first use**:
//!
//! | variant  | tile  | ISA requirement      | k-loop                      |
//! |----------|-------|----------------------|-----------------------------|
//! | `avx512` | 8×8   | AVX-512F             | 2×-unrolled, 8-double lanes |
//! | `avx2`   | 4×6   | AVX2 + FMA           | 2×-unrolled, 4-double lanes |
//! | `scalar` | 8×4   | none (portable)      | auto-vectorized             |
//!
//! The scalar kernel is the exact loop the crate shipped before the SIMD
//! variants landed; it stays both as the portable fallback and as the
//! A/B baseline the equivalence test battery compares every SIMD variant
//! against. Because the register-tile shape is part of the packing
//! contract (panels are laid out in `MR`-row / `NR`-column micro-panel
//! order), [`Kernel`] carries its `mr`/`nr` and the packing routines in
//! [`crate::gemm`] read them at run time.
//!
//! # Numerical contract
//!
//! Every variant performs, per accumulator lane `(i, j)` and per k-step,
//! the same fused operation sequence as the scalar baseline:
//!
//! ```text
//! cr ← fma(−ai, bi, fma(ar, br, cr))    ci ← fma(ai, br, fma(ar, bi, ci))
//! ```
//!
//! so dispatching never changes the *order* of the per-lane reduction —
//! only the hardware register width. When the scalar path itself compiles
//! with hardware FMA (the repo pins `target-cpu=native`), scalar and SIMD
//! results agree to the last bit on identical inputs; without hardware
//! FMA the scalar fallback rounds each multiply and add separately, which
//! the equivalence battery accommodates with a documented
//! `O(k·ε)`-per-element tolerance (one extra rounding per fused pair).
//!
//! # Forcing a variant
//!
//! * `QTX_FORCE_KERNEL=scalar|avx2|avx512` pins the startup default — the
//!   forced-scalar CI job uses it to catch silent dispatch breakage. A
//!   variant the host cannot run is ignored (the ladder falls back to the
//!   best available one), so test matrices degrade gracefully.
//! * [`force_kernel`] re-points the dispatch at run time (benches and the
//!   per-variant test suites), failing softly — returning `false` — when
//!   the requested ISA is absent.

use std::sync::atomic::{AtomicU8, Ordering};

/// Tallest register tile any variant uses (rows of C).
pub const MR_MAX: usize = 8;
/// Widest register tile any variant uses (columns of C).
pub const NR_MAX: usize = 8;

/// Accumulator block handed to a microkernel: `acc[j][i]` receives
/// element `(i, j)` of the register tile (column-major like the output).
pub type Acc = [[f64; MR_MAX]; NR_MAX];

/// One selectable microkernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Portable auto-vectorized loop (always available; the A/B baseline).
    Scalar,
    /// AVX2 + FMA, 4-double lanes, 4×6 tile.
    Avx2,
    /// AVX-512F, 8-double lanes, widened 8×8 tile.
    Avx512,
}

impl KernelVariant {
    /// Stable lower-case name (the `QTX_FORCE_KERNEL` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Avx2 => "avx2",
            KernelVariant::Avx512 => "avx512",
        }
    }

    /// Parses a `QTX_FORCE_KERNEL` value (case-insensitive). `None` for
    /// anything outside the scalar/avx2/avx512 vocabulary.
    pub fn parse(s: &str) -> Option<KernelVariant> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelVariant::Scalar),
            "avx2" => Some(KernelVariant::Avx2),
            "avx512" => Some(KernelVariant::Avx512),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> KernelVariant {
        match v {
            1 => KernelVariant::Avx2,
            2 => KernelVariant::Avx512,
            _ => KernelVariant::Scalar,
        }
    }
}

/// The inner-routine signature every variant implements:
/// `(kc, ap_re, ap_im, bp_re, bp_im, acc_re, acc_im)` over the packed
/// planar panels described in [`Kernel::run`].
type MicroKernelFn = unsafe fn(usize, &[f64], &[f64], &[f64], &[f64], &mut Acc, &mut Acc);

/// A dispatched microkernel: the register-tile shape the packing layer
/// must honor plus the inner routine itself.
pub struct Kernel {
    /// Which implementation this is.
    pub variant: KernelVariant,
    /// Register-tile rows — the A-panel micro-row height.
    pub mr: usize,
    /// Register-tile columns — the B-panel micro-column width.
    pub nr: usize,
    ukr: MicroKernelFn,
}

impl Kernel {
    /// Runs the microkernel over one packed panel pair: `ap_*` hold the
    /// `mr`-row A micro-panel (element `(i, l)` at `l·mr + i`), `bp_*`
    /// the `nr`-column B micro-panel (element `(l, j)` at `l·nr + j`),
    /// both `kc` deep. The tile result lands in `acc[j][i]` for
    /// `i < mr`, `j < nr`; lanes outside the tile are left untouched.
    #[inline]
    #[allow(clippy::too_many_arguments)] // mirrors the BLIS ukr signature
    pub fn run(
        &self,
        kc: usize,
        ap_re: &[f64],
        ap_im: &[f64],
        bp_re: &[f64],
        bp_im: &[f64],
        acc_re: &mut Acc,
        acc_im: &mut Acc,
    ) {
        debug_assert!(ap_re.len() >= kc * self.mr && ap_im.len() >= kc * self.mr);
        debug_assert!(bp_re.len() >= kc * self.nr && bp_im.len() >= kc * self.nr);
        // Safety: the panels are long enough for `kc` steps at this
        // kernel's mr/nr (checked above), and the ISA the variant needs
        // was verified by `detect` before the variant became selectable.
        unsafe { (self.ukr)(kc, ap_re, ap_im, bp_re, bp_im, acc_re, acc_im) }
    }
}

/// The portable baseline (the pre-dispatch 8×4 kernel, verbatim).
static SCALAR: Kernel = Kernel { variant: KernelVariant::Scalar, mr: 8, nr: 4, ukr: ukr_scalar };

#[cfg(target_arch = "x86_64")]
static AVX2: Kernel = Kernel { variant: KernelVariant::Avx2, mr: 4, nr: 6, ukr: ukr_avx2 };

#[cfg(target_arch = "x86_64")]
static AVX512: Kernel = Kernel { variant: KernelVariant::Avx512, mr: 8, nr: 8, ukr: ukr_avx512 };

/// Whether the host can run a variant (scalar always can).
pub fn variant_available(v: KernelVariant) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match v {
            KernelVariant::Scalar => true,
            KernelVariant::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            KernelVariant::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        v == KernelVariant::Scalar
    }
}

/// Every variant the host can run, widest last.
pub fn available_variants() -> Vec<KernelVariant> {
    [KernelVariant::Scalar, KernelVariant::Avx2, KernelVariant::Avx512]
        .into_iter()
        .filter(|&v| variant_available(v))
        .collect()
}

/// The widest variant the host supports — the dispatch ladder's pick
/// when no override is in effect.
pub fn best_variant() -> KernelVariant {
    if variant_available(KernelVariant::Avx512) {
        KernelVariant::Avx512
    } else if variant_available(KernelVariant::Avx2) {
        KernelVariant::Avx2
    } else {
        KernelVariant::Scalar
    }
}

/// Startup default: `QTX_FORCE_KERNEL` when it names a variant the host
/// can run, the best available variant otherwise.
fn default_variant() -> KernelVariant {
    if let Ok(val) = std::env::var("QTX_FORCE_KERNEL") {
        if let Some(v) = KernelVariant::parse(&val) {
            if variant_available(v) {
                return v;
            }
        }
    }
    best_variant()
}

/// Current selection; `u8::MAX` = not yet initialized.
static ACTIVE: AtomicU8 = AtomicU8::new(u8::MAX);

fn kernel_of(v: KernelVariant) -> &'static Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        match v {
            KernelVariant::Scalar => &SCALAR,
            KernelVariant::Avx2 => &AVX2,
            KernelVariant::Avx512 => &AVX512,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = v;
        &SCALAR
    }
}

/// The currently dispatched microkernel. First call resolves the default
/// (CPU detection + `QTX_FORCE_KERNEL`). The initialization is a
/// compare-exchange against the sentinel so a lazy first call can never
/// overwrite a [`force_kernel`] selection that raced ahead of it.
pub fn active_kernel() -> &'static Kernel {
    let mut v = ACTIVE.load(Ordering::Relaxed);
    if v == u8::MAX {
        let d = default_variant() as u8;
        v = match ACTIVE.compare_exchange(u8::MAX, d, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => d,
            Err(current) => current,
        };
    }
    kernel_of(KernelVariant::from_u8(v))
}

/// The currently dispatched variant.
pub fn active_variant() -> KernelVariant {
    active_kernel().variant
}

/// Re-points the dispatch at `v` for the whole process. Returns `false`
/// (leaving the selection unchanged) when the host lacks the ISA — the
/// graceful-skip path the per-variant test suites rely on. Process-global:
/// concurrent tests that force different variants must serialize.
pub fn force_kernel(v: KernelVariant) -> bool {
    if !variant_available(v) {
        return false;
    }
    ACTIVE.store(v as u8, Ordering::Relaxed);
    true
}

/// Restores the startup default (detection + `QTX_FORCE_KERNEL`).
pub fn reset_kernel() {
    ACTIVE.store(default_variant() as u8, Ordering::Relaxed);
}

// ── scalar baseline ─────────────────────────────────────────────────────

/// 8×4 register tile, separate re/im scalar accumulators — the exact
/// pre-dispatch kernel. The `MR`-wide inner loops auto-vectorize to
/// full-width FMAs when the target has them.
unsafe fn ukr_scalar(
    kc: usize,
    ap_re: &[f64],
    ap_im: &[f64],
    bp_re: &[f64],
    bp_im: &[f64],
    acc_re: &mut Acc,
    acc_im: &mut Acc,
) {
    const MR: usize = 8;
    const NR: usize = 4;
    let mut cr = [[0.0f64; MR]; NR];
    let mut ci = [[0.0f64; MR]; NR];
    let a_iter = ap_re[..kc * MR].chunks_exact(MR).zip(ap_im[..kc * MR].chunks_exact(MR));
    let b_iter = bp_re[..kc * NR].chunks_exact(NR).zip(bp_im[..kc * NR].chunks_exact(NR));
    for ((ar, ai), (br, bi)) in a_iter.zip(b_iter) {
        for j in 0..NR {
            let brj = br[j];
            let bij = bi[j];
            let crj = &mut cr[j];
            let cij = &mut ci[j];
            #[cfg(target_feature = "fma")]
            for i in 0..MR {
                // Explicit mul_add: Rust never contracts `a*b + c` into an
                // FMA on its own; with the `fma` target feature these
                // lower to single vfmadd instructions and vectorize.
                crj[i] = ai[i].mul_add(-bij, ar[i].mul_add(brj, crj[i]));
                cij[i] = ai[i].mul_add(brj, ar[i].mul_add(bij, cij[i]));
            }
            #[cfg(not(target_feature = "fma"))]
            for i in 0..MR {
                // Without hardware FMA `mul_add` is a slow libm call;
                // plain multiply-add keeps the loop vectorizable.
                crj[i] += ar[i] * brj - ai[i] * bij;
                cij[i] += ar[i] * bij + ai[i] * brj;
            }
        }
    }
    for j in 0..NR {
        acc_re[j][..MR].copy_from_slice(&cr[j]);
        acc_im[j][..MR].copy_from_slice(&ci[j]);
    }
}

// ── AVX2 + FMA ──────────────────────────────────────────────────────────

/// 4×6 tile on 4-double ymm lanes: 12 accumulator registers + 2 operand
/// registers + 2 broadcast temporaries exactly fill the 16-register AVX2
/// file (the BLIS dgemm proportions, halved for the split re/im planes).
/// The k-loop is 2×-unrolled with both steps' A-vectors loaded up front,
/// so the loads of step `l+1` overlap the FMA chains of step `l`
/// (software pipelining; each lane's reduction order is unchanged).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn ukr_avx2(
    kc: usize,
    ap_re: &[f64],
    ap_im: &[f64],
    bp_re: &[f64],
    bp_im: &[f64],
    acc_re: &mut Acc,
    acc_im: &mut Acc,
) {
    use core::arch::x86_64::*;
    const MR: usize = 4;
    const NR: usize = 6;
    let apr = ap_re.as_ptr();
    let api = ap_im.as_ptr();
    let bpr = bp_re.as_ptr();
    let bpi = bp_im.as_ptr();
    let mut cr = [_mm256_setzero_pd(); NR];
    let mut ci = [_mm256_setzero_pd(); NR];
    let mut l = 0usize;
    while l + 2 <= kc {
        let ar0 = _mm256_loadu_pd(apr.add(l * MR));
        let ai0 = _mm256_loadu_pd(api.add(l * MR));
        let ar1 = _mm256_loadu_pd(apr.add((l + 1) * MR));
        let ai1 = _mm256_loadu_pd(api.add((l + 1) * MR));
        for j in 0..NR {
            let br = _mm256_broadcast_sd(&*bpr.add(l * NR + j));
            let bi = _mm256_broadcast_sd(&*bpi.add(l * NR + j));
            cr[j] = _mm256_fnmadd_pd(ai0, bi, _mm256_fmadd_pd(ar0, br, cr[j]));
            ci[j] = _mm256_fmadd_pd(ai0, br, _mm256_fmadd_pd(ar0, bi, ci[j]));
        }
        for j in 0..NR {
            let br = _mm256_broadcast_sd(&*bpr.add((l + 1) * NR + j));
            let bi = _mm256_broadcast_sd(&*bpi.add((l + 1) * NR + j));
            cr[j] = _mm256_fnmadd_pd(ai1, bi, _mm256_fmadd_pd(ar1, br, cr[j]));
            ci[j] = _mm256_fmadd_pd(ai1, br, _mm256_fmadd_pd(ar1, bi, ci[j]));
        }
        l += 2;
    }
    if l < kc {
        let ar0 = _mm256_loadu_pd(apr.add(l * MR));
        let ai0 = _mm256_loadu_pd(api.add(l * MR));
        for j in 0..NR {
            let br = _mm256_broadcast_sd(&*bpr.add(l * NR + j));
            let bi = _mm256_broadcast_sd(&*bpi.add(l * NR + j));
            cr[j] = _mm256_fnmadd_pd(ai0, bi, _mm256_fmadd_pd(ar0, br, cr[j]));
            ci[j] = _mm256_fmadd_pd(ai0, br, _mm256_fmadd_pd(ar0, bi, ci[j]));
        }
    }
    for j in 0..NR {
        _mm256_storeu_pd(acc_re[j].as_mut_ptr(), cr[j]);
        _mm256_storeu_pd(acc_im[j].as_mut_ptr(), ci[j]);
    }
}

// ── AVX-512 ─────────────────────────────────────────────────────────────

/// Widened 8×8 tile on 8-double zmm lanes: 16 accumulators + 2 operand
/// vectors + 2 broadcast registers use 20 of the 32-register AVX-512
/// file, and the 16 independent fmadd→fnmadd chains keep both FMA ports
/// saturated. Same 2×-unrolled software-pipelined k-loop as the AVX2
/// variant (per-lane reduction order identical to the scalar baseline).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn ukr_avx512(
    kc: usize,
    ap_re: &[f64],
    ap_im: &[f64],
    bp_re: &[f64],
    bp_im: &[f64],
    acc_re: &mut Acc,
    acc_im: &mut Acc,
) {
    use core::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 8;
    let apr = ap_re.as_ptr();
    let api = ap_im.as_ptr();
    let bpr = bp_re.as_ptr();
    let bpi = bp_im.as_ptr();
    let mut cr = [_mm512_setzero_pd(); NR];
    let mut ci = [_mm512_setzero_pd(); NR];
    let mut l = 0usize;
    while l + 2 <= kc {
        let ar0 = _mm512_loadu_pd(apr.add(l * MR));
        let ai0 = _mm512_loadu_pd(api.add(l * MR));
        let ar1 = _mm512_loadu_pd(apr.add((l + 1) * MR));
        let ai1 = _mm512_loadu_pd(api.add((l + 1) * MR));
        for j in 0..NR {
            let br = _mm512_set1_pd(*bpr.add(l * NR + j));
            let bi = _mm512_set1_pd(*bpi.add(l * NR + j));
            cr[j] = _mm512_fnmadd_pd(ai0, bi, _mm512_fmadd_pd(ar0, br, cr[j]));
            ci[j] = _mm512_fmadd_pd(ai0, br, _mm512_fmadd_pd(ar0, bi, ci[j]));
        }
        for j in 0..NR {
            let br = _mm512_set1_pd(*bpr.add((l + 1) * NR + j));
            let bi = _mm512_set1_pd(*bpi.add((l + 1) * NR + j));
            cr[j] = _mm512_fnmadd_pd(ai1, bi, _mm512_fmadd_pd(ar1, br, cr[j]));
            ci[j] = _mm512_fmadd_pd(ai1, br, _mm512_fmadd_pd(ar1, bi, ci[j]));
        }
        l += 2;
    }
    if l < kc {
        let ar0 = _mm512_loadu_pd(apr.add(l * MR));
        let ai0 = _mm512_loadu_pd(api.add(l * MR));
        for j in 0..NR {
            let br = _mm512_set1_pd(*bpr.add(l * NR + j));
            let bi = _mm512_set1_pd(*bpi.add(l * NR + j));
            cr[j] = _mm512_fnmadd_pd(ai0, bi, _mm512_fmadd_pd(ar0, br, cr[j]));
            ci[j] = _mm512_fmadd_pd(ai0, br, _mm512_fmadd_pd(ar0, bi, ci[j]));
        }
    }
    for j in 0..NR {
        _mm512_storeu_pd(acc_re[j].as_mut_ptr(), cr[j]);
        _mm512_storeu_pd(acc_im[j].as_mut_ptr(), ci[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_vocabulary_roundtrips() {
        for v in [KernelVariant::Scalar, KernelVariant::Avx2, KernelVariant::Avx512] {
            assert_eq!(KernelVariant::parse(v.name()), Some(v));
            assert_eq!(KernelVariant::parse(&v.name().to_uppercase()), Some(v));
        }
        assert_eq!(KernelVariant::parse(" avx512 "), Some(KernelVariant::Avx512));
        assert_eq!(KernelVariant::parse("sse2"), None);
        assert_eq!(KernelVariant::parse(""), None);
    }

    #[test]
    fn scalar_is_always_available_and_ladder_is_ordered() {
        let avail = available_variants();
        assert!(avail.contains(&KernelVariant::Scalar));
        assert_eq!(avail.last().copied(), Some(best_variant()));
        assert!(variant_available(best_variant()));
    }

    #[test]
    fn tile_shapes_fit_the_declared_maxima() {
        for v in available_variants() {
            let k = kernel_of(v);
            assert!(k.mr <= MR_MAX && k.nr <= NR_MAX, "{:?} tile exceeds Acc", v);
            assert_eq!(k.variant, v);
        }
    }

    /// Naive complex reference over the packed-panel layout.
    fn reference(
        kern: &Kernel,
        kc: usize,
        ap: &(Vec<f64>, Vec<f64>),
        bp: &(Vec<f64>, Vec<f64>),
    ) -> (Acc, Acc) {
        let (mut er, mut ei) = ([[0.0; MR_MAX]; NR_MAX], [[0.0; MR_MAX]; NR_MAX]);
        for l in 0..kc {
            for j in 0..kern.nr {
                for i in 0..kern.mr {
                    let (ar, ai) = (ap.0[l * kern.mr + i], ap.1[l * kern.mr + i]);
                    let (br, bi) = (bp.0[l * kern.nr + j], bp.1[l * kern.nr + j]);
                    er[j][i] += ar * br - ai * bi;
                    ei[j][i] += ar * bi + ai * br;
                }
            }
        }
        (er, ei)
    }

    #[test]
    fn every_available_variant_matches_the_naive_tile() {
        // kc values straddle the 2× unroll (odd remainders included).
        for v in available_variants() {
            let kern = kernel_of(v);
            for kc in [1usize, 2, 3, 7, 32, 33] {
                let mut state = 0x9E37u64.wrapping_add(kc as u64);
                let mut next = move || {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
                };
                let ap: (Vec<f64>, Vec<f64>) = (
                    (0..kc * kern.mr).map(|_| next()).collect(),
                    (0..kc * kern.mr).map(|_| next()).collect(),
                );
                let bp = (
                    (0..kc * kern.nr).map(|_| next()).collect::<Vec<_>>(),
                    (0..kc * kern.nr).map(|_| next()).collect::<Vec<_>>(),
                );
                let (mut ar, mut ai) = ([[0.0; MR_MAX]; NR_MAX], [[0.0; MR_MAX]; NR_MAX]);
                kern.run(kc, &ap.0, &ap.1, &bp.0, &bp.1, &mut ar, &mut ai);
                let (er, ei) = reference(kern, kc, &ap, &bp);
                for j in 0..kern.nr {
                    for i in 0..kern.mr {
                        let tol = 1e-14 * (kc as f64 + 1.0);
                        assert!(
                            (ar[j][i] - er[j][i]).abs() < tol && (ai[j][i] - ei[j][i]).abs() < tol,
                            "{v:?} kc={kc} ({i},{j}): {} vs {}",
                            ar[j][i],
                            er[j][i]
                        );
                    }
                }
            }
        }
    }
}
