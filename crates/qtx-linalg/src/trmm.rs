//! Triangular matrix multiply (`ztrmm`), completing the BLAS-3 triangle
//! set next to [`crate::trsm`] and [`crate::herk`]/[`crate::her2k`].
//!
//! The compact-WY machinery multiplies by small upper-triangular `T`
//! factors constantly — the blocked QR's `W ← op(T)·W` transform, the
//! Hessenberg reduction's `Y = (A·V)·T` and `Q`-accumulation products —
//! and until now paid full square-gemm flops for a matrix whose lower half
//! is zeros. `ztrmm` computes `B ← α·op(A)·B` (left) or `B ← α·B·op(A)`
//! (right) **in place** over a [`ZMatMut`] view, reading only the `uplo`
//! triangle of `A`, at half the operations of the gemm it replaces (and
//! without the second staging buffer the out-of-place product needed).
//!
//! Cache blocking mirrors [`crate::trsm`]: the triangle is cut into
//! `NB × NB` diagonal blocks, and everything off-diagonal becomes one
//! rank-`NB` [`crate::gemm`] update on the dispatched packed microkernel
//! ([`crate::kernel`]) — the exact half-of-gemm saving, realized at full
//! packed-kernel speed.
//! The diagonal blocks themselves dispatch on the panel width: against a
//! wide `B` they are **staged dense** (the stored triangle copied into a
//! small zeroed scratch, unit diagonal materialized) and multiplied
//! through the packed gemm too — a scalar triangular sweep runs at a
//! fraction of the packed kernel's throughput on this AoS complex layout,
//! so burning the NB²/2 zero-half flops at ~4× the flop rate wins well
//! before `NB` columns — while skinny panels (fewer than [`SMALL_RHS`]
//! columns, where packing can't amortize) take an RHS-register-blocked
//! scalar sweep sharing each loaded `A` element across four columns.
//! Processing order makes the in-place update safe: an effectively-lower
//! left multiply walks diagonal blocks bottom-up so the rows a block
//! reads (above it) are still unmodified, with each block's full
//! contribution staged through a small raw-`Vec` scratch (no
//! [`crate::zmat::ZMat`] allocation); the right side splits `B` at a
//! column boundary instead, which is aliasing-free in column-major
//! storage.

use crate::complex::Complex64;
use crate::flops::{counts, flops_add};
use crate::gemm::{gemm_into_unc, Op};
use crate::trsm::{aeff, effectively_lower, Diag, Side, UpLo};
use crate::zmat::{ZMatMut, ZMatRef};

/// Diagonal-block edge of the blocked sweep. 64 keeps the staged diagonal
/// gemms and the off-diagonal rank-`NB` updates above the packed-path
/// thresholds even against narrow (64-column) panels, and still covers
/// the 48-wide compact-WY `T` transforms with a single staged block.
const NB: usize = 64;

/// RHS-panel width of the scalar-sweep fallback (see the same constant
/// in [`crate::trsm`]): four independent accumulation chains per loaded
/// `A` element.
const RHS_BLK: usize = 4;

/// Panels narrower than this take the scalar sweep for the diagonal
/// blocks: below it the staged-dense path's cleanup copy and packing
/// setup cost more than the packed kernel saves.
const SMALL_RHS: usize = 8;

/// Copies the `uplo` triangle of the `kb×kb` diagonal block at `k0` into
/// the (pre-sized) scratch as a clean dense block — zeros in the other
/// half, explicit unit diagonal for `Diag::Unit` — so the packed gemm can
/// consume it without ever reading the unreferenced triangle.
fn stage_clean_diag(
    a: ZMatRef<'_>,
    uplo: UpLo,
    diag: Diag,
    k0: usize,
    kb: usize,
    dbuf: &mut [Complex64],
) {
    dbuf[..kb * kb].fill(Complex64::ZERO);
    for t in 0..kb {
        let src = a.col(k0 + t);
        let dst = &mut dbuf[t * kb..(t + 1) * kb];
        match uplo {
            UpLo::Lower => dst[t..kb].copy_from_slice(&src[k0 + t..k0 + kb]),
            UpLo::Upper => dst[..t + 1].copy_from_slice(&src[k0..k0 + t + 1]),
        }
        if diag == Diag::Unit {
            dst[t] = Complex64::ONE;
        }
    }
}

/// `B ← α·op(A)·B` (left) or `B ← α·B·op(A)` (right) in place. Only the
/// `uplo` triangle of `A` is read; `Diag::Unit` never reads the diagonal.
pub fn ztrmm(
    side: Side,
    uplo: UpLo,
    op: Op,
    diag: Diag,
    alpha: Complex64,
    a: ZMatRef<'_>,
    b: ZMatMut<'_>,
) {
    let nrhs = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    flops_add(counts::ztrmm(a.rows(), nrhs));
    trmm_unc(side, uplo, op, diag, alpha, a, b);
}

/// [`ztrmm`] without FLOP accounting — the entry the compact-WY kernels
/// in [`crate::qr`]/[`crate::eig`] call so their `zgeqrf`/`zgehrd`
/// formula counts aren't inflated by internal kernel traffic.
pub(crate) fn trmm_unc(
    side: Side,
    uplo: UpLo,
    op: Op,
    diag: Diag,
    alpha: Complex64,
    a: ZMatRef<'_>,
    mut b: ZMatMut<'_>,
) {
    assert_eq!(a.rows(), a.cols(), "trmm triangle must be square");
    if alpha == Complex64::ZERO {
        for j in 0..b.cols() {
            b.col_mut(j).fill(Complex64::ZERO);
        }
        return;
    }
    match side {
        Side::Left => {
            assert_eq!(b.rows(), a.rows(), "trmm left: B row count mismatch");
            trmm_left(uplo, op, diag, alpha, a, b);
        }
        Side::Right => {
            assert_eq!(b.cols(), a.rows(), "trmm right: B column count mismatch");
            trmm_right(uplo, op, diag, alpha, a, b);
        }
    }
}

fn trmm_left(uplo: UpLo, op: Op, diag: Diag, alpha: Complex64, a: ZMatRef<'_>, mut b: ZMatMut<'_>) {
    let n = a.rows();
    let m = b.cols();
    if n == 0 || m == 0 {
        return;
    }
    let lower = effectively_lower(uplo, op);
    let staged = m >= SMALL_RHS;
    let nb = NB.min(n);
    // Staging for the block's contribution (the gemms read rows of B that
    // the block result overwrites) plus the cleaned diagonal block, both
    // carved from the warm per-thread scratch — every element is written
    // before it is read.
    crate::workspace::with_tri_scratch(nb * m + if staged { nb * nb } else { 0 }, |scratch| {
        let (wbuf, dbuf) = scratch.split_at_mut(nb * m);
        trmm_left_body(uplo, op, diag, alpha, a, &mut b, lower, staged, wbuf, dbuf);
    });
}

#[allow(clippy::too_many_arguments)]
fn trmm_left_body(
    uplo: UpLo,
    op: Op,
    diag: Diag,
    alpha: Complex64,
    a: ZMatRef<'_>,
    b: &mut ZMatMut<'_>,
    lower: bool,
    staged: bool,
    wbuf: &mut [Complex64],
    dbuf: &mut [Complex64],
) {
    let n = a.rows();
    let m = b.cols();
    // Effectively-lower multiplies bottom-up (each block reads only rows
    // above itself, still old); effectively-upper top-down.
    let mut done = 0;
    while done < n {
        let kb = NB.min(n - done);
        let k0 = if lower { n - done - kb } else { done };
        let (r0, rows) = if lower { (0, k0) } else { (k0 + kb, n - k0 - kb) };
        if rows > 0 {
            // w = op(A)[k0..k0+kb, r0..r0+rows] · B[r0.., :], addressed
            // through the stored triangle.
            let (asub, aop) = match op {
                Op::None => (a.sub(k0, r0, kb, rows), Op::None),
                _ => (a.sub(r0, k0, rows, kb), op),
            };
            let bother = b.as_ref().sub(r0, 0, rows, m);
            let w = ZMatMut::from_slice(&mut wbuf[..kb * m], kb, m, kb);
            gemm_into_unc(Complex64::ONE, asub, aop, bother, Op::None, Complex64::ZERO, w);
        }
        if staged {
            // Wide panel: the diagonal triangle goes through the packed
            // gemm as a cleaned dense block, accumulating onto the staged
            // off-diagonal part; the block result is then α·w in one copy.
            stage_clean_diag(a, uplo, diag, k0, kb, dbuf);
            let dclean = ZMatRef::from_slice(&dbuf[..kb * kb], kb, kb, kb);
            let beta = if rows > 0 { Complex64::ONE } else { Complex64::ZERO };
            let bblock = b.as_ref().sub(k0, 0, kb, m);
            let w = ZMatMut::from_slice(&mut wbuf[..kb * m], kb, m, kb);
            gemm_into_unc(Complex64::ONE, dclean, op, bblock, Op::None, beta, w);
            for j in 0..m {
                let bcol = &mut b.col_mut(j)[k0..k0 + kb];
                for (x, &w) in bcol.iter_mut().zip(&wbuf[j * kb..(j + 1) * kb]) {
                    *x = w * alpha;
                }
            }
        } else {
            mult_diag_left(a, op, diag, lower, k0, kb, b);
            // B[block] = α·(diag result + staged off-diagonal part).
            for j in 0..m {
                let bcol = &mut b.col_mut(j)[k0..k0 + kb];
                if rows > 0 {
                    for (x, &w) in bcol.iter_mut().zip(&wbuf[j * kb..(j + 1) * kb]) {
                        *x += w;
                    }
                }
                if alpha != Complex64::ONE {
                    for x in bcol.iter_mut() {
                        *x *= alpha;
                    }
                }
            }
        }
        done += kb;
    }
}

/// In-place triangular multiply of one diagonal block against rows
/// `k0..k0+kb` of `B`, in [`RHS_BLK`]-column panels.
fn mult_diag_left(
    a: ZMatRef<'_>,
    op: Op,
    diag: Diag,
    lower: bool,
    k0: usize,
    kb: usize,
    b: &mut ZMatMut<'_>,
) {
    let m = b.cols();
    let mut j = 0;
    while j + RHS_BLK <= m {
        let cols = b.cols_mut_array::<RHS_BLK>(j);
        mult_diag_left_panel(a, op, diag, lower, k0, kb, cols);
        j += RHS_BLK;
    }
    while j < m {
        let cols = b.cols_mut_array::<1>(j);
        mult_diag_left_panel(a, op, diag, lower, k0, kb, cols);
        j += 1;
    }
}

/// One RHS panel of the diagonal-block multiply. Like the trsm sweep,
/// both branches walk **columns of the stored triangle**: `Op::None`
/// scatters `x[t]`'s contribution along its own (contiguous) column,
/// processed in an order that keeps every value it reads unmodified —
/// bottom-up for effectively-lower (row `t` reads rows above), top-down
/// for effectively-upper — while the transposed ops gather a contiguous
/// dot product against column `gt` of the storage.
fn mult_diag_left_panel<const K: usize>(
    a: ZMatRef<'_>,
    op: Op,
    diag: Diag,
    lower: bool,
    k0: usize,
    kb: usize,
    mut cols: [&mut [Complex64]; K],
) {
    for t in 0..kb {
        // Scatter order: lower walks its columns bottom-up (so row gt is
        // still old when used), upper top-down; the gather (transposed)
        // branches use the same order, which leaves their sources old.
        let t = if lower { kb - 1 - t } else { t };
        let gt = k0 + t;
        let acol = a.col(gt);
        match op {
            Op::None => {
                // x_old[gt] scatters down (lower) or up (upper) its own
                // column; gt's final value is d·x_old[gt], with later
                // steps adding the off-row contributions.
                let d = if diag == Diag::NonUnit { acol[gt] } else { Complex64::ONE };
                let mut x = [Complex64::ZERO; K];
                for (c, xq) in cols.iter_mut().zip(x.iter_mut()) {
                    *xq = c[gt];
                    c[gt] = *xq * d;
                }
                let (lo, hi) = if lower { (gt + 1, k0 + kb) } else { (k0, gt) };
                for (i, &ai) in (lo..hi).zip(&acol[lo..hi]) {
                    for (c, &xq) in cols.iter_mut().zip(&x) {
                        c[i] = c[i].mul_add(ai, xq);
                    }
                }
            }
            Op::Transpose | Op::Adjoint => {
                // result[gt] = d·x_old[gt] + Σ op(A)[gt, u]·x_old[u], the
                // sum gathered from the contiguous stored column gt.
                let (lo, hi) = if lower { (k0, gt) } else { (gt + 1, k0 + kb) };
                let mut s = [Complex64::ZERO; K];
                if op == Op::Adjoint {
                    for (i, &ai) in (lo..hi).zip(&acol[lo..hi]) {
                        let ac = ai.conj();
                        for (c, sq) in cols.iter().zip(s.iter_mut()) {
                            *sq = sq.mul_add(ac, c[i]);
                        }
                    }
                } else {
                    for (i, &ai) in (lo..hi).zip(&acol[lo..hi]) {
                        for (c, sq) in cols.iter().zip(s.iter_mut()) {
                            *sq = sq.mul_add(ai, c[i]);
                        }
                    }
                }
                let d = if diag == Diag::NonUnit { aeff(a, op, gt, gt) } else { Complex64::ONE };
                for (c, &sq) in cols.iter_mut().zip(&s) {
                    c[gt] = sq.mul_add(c[gt], d);
                }
            }
        }
    }
}

fn trmm_right(
    uplo: UpLo,
    op: Op,
    diag: Diag,
    alpha: Complex64,
    a: ZMatRef<'_>,
    mut b: ZMatMut<'_>,
) {
    let n = a.rows();
    let m = b.rows();
    if n == 0 || m == 0 {
        return;
    }
    let lower = effectively_lower(uplo, op);
    let staged = m >= SMALL_RHS;
    let nb = NB.min(n);
    let need = if staged { m * nb + nb * nb } else { 0 };
    crate::workspace::with_tri_scratch(need, |scratch| {
        let (wbuf, dbuf) = scratch.split_at_mut(if staged { m * nb } else { 0 });
        trmm_right_body(uplo, op, diag, alpha, a, &mut b, lower, staged, wbuf, dbuf);
    });
}

#[allow(clippy::too_many_arguments)]
fn trmm_right_body(
    uplo: UpLo,
    op: Op,
    diag: Diag,
    alpha: Complex64,
    a: ZMatRef<'_>,
    b: &mut ZMatMut<'_>,
    lower: bool,
    staged: bool,
    wbuf: &mut [Complex64],
    dbuf: &mut [Complex64],
) {
    let n = a.rows();
    let m = b.rows();
    // B·op(A) with op(A) effectively lower: column j sums columns u ≥ j,
    // so blocks process left-to-right (sources to the right stay old);
    // effectively upper right-to-left.
    let mut done = 0;
    while done < n {
        let kb = NB.min(n - done);
        let k0 = if lower { done } else { n - done - kb };
        if staged {
            // Wide side: B[:, block]·op(tri) through the packed gemm on a
            // cleaned dense diagonal block, staged because the product
            // overwrites its own input columns.
            stage_clean_diag(a, uplo, diag, k0, kb, dbuf);
            let dclean = ZMatRef::from_slice(&dbuf[..kb * kb], kb, kb, kb);
            let bblock = b.as_ref().sub(0, k0, m, kb);
            let w = ZMatMut::from_slice(&mut wbuf[..m * kb], m, kb, m);
            gemm_into_unc(Complex64::ONE, bblock, Op::None, dclean, op, Complex64::ZERO, w);
            for (t, wcol) in wbuf[..m * kb].chunks_exact(m).enumerate() {
                b.col_mut(k0 + t).copy_from_slice(wcol);
            }
        } else {
            mult_diag_right(a, op, diag, lower, k0, kb, b);
        }
        let (c0, cols) = if lower { (k0 + kb, n - k0 - kb) } else { (0, k0) };
        if cols > 0 {
            // Aliasing-free column split: the block columns accumulate a
            // gemm against the (still old) other columns.
            let (x, c) = if lower {
                let (left, right) = b.rb().split_at_col(k0 + kb);
                (right, left.sub_mut(0, k0, m, kb))
            } else {
                let (left, right) = b.rb().split_at_col(k0);
                (left, right.sub_mut(0, 0, m, kb))
            };
            let (asub, aop) = match op {
                Op::None => (a.sub(c0, k0, cols, kb), Op::None),
                _ => (a.sub(k0, c0, kb, cols), op),
            };
            gemm_into_unc(Complex64::ONE, x.as_ref(), Op::None, asub, aop, Complex64::ONE, c);
        }
        if alpha != Complex64::ONE {
            for j in k0..k0 + kb {
                for x in b.col_mut(j).iter_mut() {
                    *x *= alpha;
                }
            }
        }
        done += kb;
    }
}

/// In-place diagonal-block multiply for the right side: columns
/// `k0..k0+kb` of `B`, running contiguous column AXPYs (the coefficient
/// is one strided [`aeff`] fetch per column pair). Column `gt` finalizes
/// as `d·col_old[gt] + Σ col_old[u]·op(A)[u, gt]`; the processing order
/// (left-to-right for effectively-lower, right-to-left for upper) keeps
/// every source column old when it is read.
fn mult_diag_right(
    a: ZMatRef<'_>,
    op: Op,
    diag: Diag,
    lower: bool,
    k0: usize,
    kb: usize,
    b: &mut ZMatMut<'_>,
) {
    for t in 0..kb {
        let t = if lower { t } else { kb - 1 - t };
        let gt = k0 + t;
        if diag == Diag::NonUnit {
            let d = aeff(a, op, gt, gt);
            for x in b.col_mut(gt).iter_mut() {
                *x *= d;
            }
        }
        let (lo, hi) = if lower { (t + 1, kb) } else { (0, t) };
        for u in lo..hi {
            let gu = k0 + u;
            let f = aeff(a, op, gu, gt);
            if f == Complex64::ZERO {
                continue;
            }
            let (cu, ct) = if gu < gt {
                b.two_cols_mut(gu, gt)
            } else {
                let (ct, cu) = b.two_cols_mut(gt, gu);
                (cu, ct)
            };
            for (x, &y) in ct.iter_mut().zip(cu.iter()) {
                *x = x.mul_add(f, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::gemm::gemm;
    use crate::zmat::ZMat;

    /// Random triangle with garbage in the *other* triangle (and on the
    /// diagonal for `Diag::Unit`): trmm must never read either.
    fn triangle_with_garbage(n: usize, uplo: UpLo, diag: Diag, seed: u64) -> ZMat {
        let mut t = ZMat::random(n, n, seed);
        for j in 0..n {
            for i in 0..n {
                let stored = match uplo {
                    UpLo::Lower => i > j,
                    UpLo::Upper => i < j,
                };
                if !stored && i != j {
                    t[(i, j)] = c64(1e30, -1e30); // poison
                }
            }
            if diag == Diag::Unit {
                t[(j, j)] = c64(-7.5e20, 3.0e20); // poison: must never be read
            }
        }
        t
    }

    /// Materialized effective operand `op(tri(A))` for the gemm reference.
    fn effective(a: &ZMat, uplo: UpLo, op: Op, diag: Diag) -> ZMat {
        let n = a.rows();
        let mut eff = ZMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let stored = match uplo {
                    UpLo::Lower => i >= j,
                    UpLo::Upper => i <= j,
                };
                if stored {
                    eff[(i, j)] = a[(i, j)];
                }
            }
        }
        if diag == Diag::Unit {
            for i in 0..n {
                eff[(i, i)] = Complex64::ONE;
            }
        }
        match op {
            Op::None => eff,
            Op::Transpose => eff.transpose(),
            Op::Adjoint => eff.adjoint(),
        }
    }

    fn check(side: Side, uplo: UpLo, op: Op, diag: Diag, n: usize, m: usize, seed: u64) {
        let a = triangle_with_garbage(n, uplo, diag, seed);
        let b0 = match side {
            Side::Left => ZMat::random(n, m, seed + 1),
            Side::Right => ZMat::random(m, n, seed + 1),
        };
        let alpha = c64(0.8, -0.3);
        let mut b = b0.clone();
        ztrmm(side, uplo, op, diag, alpha, a.view(), b.view_mut());
        let eff = effective(&a, uplo, op, diag);
        let mut expected = match side {
            Side::Left => ZMat::zeros(n, m),
            Side::Right => ZMat::zeros(m, n),
        };
        match side {
            Side::Left => {
                gemm(alpha, &eff, Op::None, &b0, Op::None, Complex64::ZERO, &mut expected)
            }
            Side::Right => {
                gemm(alpha, &b0, Op::None, &eff, Op::None, Complex64::ZERO, &mut expected)
            }
        }
        let scale = expected.norm_max().max(1.0);
        assert!(
            b.max_diff(&expected) < 1e-10 * scale * n as f64,
            "side {side:?} uplo {uplo:?} op {op:?} diag {diag:?} n {n}: {:.2e}",
            b.max_diff(&expected)
        );
    }

    #[test]
    fn all_variants_small() {
        for side in [Side::Left, Side::Right] {
            for uplo in [UpLo::Lower, UpLo::Upper] {
                for op in [Op::None, Op::Transpose, Op::Adjoint] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        check(side, uplo, op, diag, 13, 5, 42);
                        check(side, uplo, op, diag, 1, 1, 43);
                    }
                }
            }
        }
    }

    #[test]
    fn all_variants_blocked_path() {
        // n > NB exercises the block loop + off-diagonal gemm updates,
        // deliberately not a multiple of the block edge; m straddles the
        // RHS panel width (4·2 + 1 remainder).
        for side in [Side::Left, Side::Right] {
            for uplo in [UpLo::Lower, UpLo::Upper] {
                for op in [Op::None, Op::Transpose, Op::Adjoint] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        // m = 9 takes the staged-dense diagonal path,
                        // m = 5 the RHS-blocked scalar fallback (panel + 1).
                        check(side, uplo, op, diag, 150, 9, 77);
                        check(side, uplo, op, diag, 150, 5, 78);
                    }
                }
            }
        }
    }

    #[test]
    fn multiplies_in_place_on_a_sub_block() {
        // The compact-WY use-case: multiply only a panel of a larger
        // matrix through a block_view_mut.
        let a = triangle_with_garbage(6, UpLo::Upper, Diag::NonUnit, 5);
        let mut big = ZMat::random(10, 8, 6);
        let before = big.clone();
        let x_ref = {
            let mut x = big.block(2, 1, 6, 4);
            ztrmm(
                Side::Left,
                UpLo::Upper,
                Op::None,
                Diag::NonUnit,
                Complex64::ONE,
                a.view(),
                x.view_mut(),
            );
            x
        };
        ztrmm(
            Side::Left,
            UpLo::Upper,
            Op::None,
            Diag::NonUnit,
            Complex64::ONE,
            a.view(),
            big.block_view_mut(2, 1, 6, 4),
        );
        assert!(big.block(2, 1, 6, 4).max_diff(&x_ref) == 0.0, "panel product differs");
        for j in 0..8 {
            for i in 0..10 {
                if (2..8).contains(&i) && (1..5).contains(&j) {
                    continue;
                }
                assert_eq!(big[(i, j)], before[(i, j)], "({i},{j}) clobbered");
            }
        }
    }

    #[test]
    fn alpha_zero_clears_output() {
        let a = triangle_with_garbage(7, UpLo::Lower, Diag::NonUnit, 9);
        let mut b = ZMat::random(7, 3, 10);
        ztrmm(
            Side::Left,
            UpLo::Lower,
            Op::None,
            Diag::NonUnit,
            Complex64::ZERO,
            a.view(),
            b.view_mut(),
        );
        assert!(b.as_slice().iter().all(|z| *z == Complex64::ZERO));
    }

    // The seed-gemm A/B kernel clones its operands by design, so the
    // zero-allocation property only holds for the production gemm.
    #[cfg(not(feature = "seed-gemm"))]
    #[test]
    fn allocation_free() {
        use crate::zmat::alloc_count;
        // In-place over a borrowed view: trmm must not allocate a single
        // ZMat (the off-diagonal staging uses a raw Vec, like trsm).
        let a = triangle_with_garbage(96, UpLo::Lower, Diag::NonUnit, 11);
        let mut b = ZMat::random(96, 12, 12);
        let mut br = ZMat::random(12, 96, 13);
        let before = alloc_count();
        ztrmm(
            Side::Left,
            UpLo::Lower,
            Op::None,
            Diag::NonUnit,
            Complex64::ONE,
            a.view(),
            b.view_mut(),
        );
        ztrmm(
            Side::Right,
            UpLo::Lower,
            Op::Adjoint,
            Diag::Unit,
            Complex64::ONE,
            a.view(),
            br.view_mut(),
        );
        assert_eq!(alloc_count(), before, "ztrmm allocated a ZMat");
    }

    #[test]
    fn counts_half_the_gemm_flops() {
        let a = triangle_with_garbage(20, UpLo::Upper, Diag::NonUnit, 13);
        let mut b = ZMat::random(20, 6, 14);
        let scope = crate::flops::FlopScope::start();
        ztrmm(
            Side::Left,
            UpLo::Upper,
            Op::None,
            Diag::NonUnit,
            Complex64::ONE,
            a.view(),
            b.view_mut(),
        );
        assert!(scope.elapsed() >= counts::ztrmm(20, 6));
        assert!(counts::ztrmm(20, 6) * 2 == counts::zgemm(20, 6, 20));
    }
}
