//! Deterministic pseudo-random numbers (PCG-XSH-RR flavour).
//!
//! FEAST starts from a matrix of random numbers `Y_F` (Eq. 10) and the
//! workload generators need reproducible structures, so the workspace
//! carries its own tiny, seedable generator instead of depending on
//! platform entropy. The `rand` crate is still used in tests/benches where
//! distribution quality matters.

/// A 64-bit permuted-congruential generator (PCG-XSH-RR 64/32 doubled up).
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u64,
    inc: u64,
}

impl Pcg64 {
    const MULT: u64 = 6364136223846793005;

    /// Creates a generator from a seed (stream constant fixed).
    pub fn new(seed: u64) -> Self {
        let mut rng = Pcg64 { state: 0, inc: (seed << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed ^ 0x9e3779b97f4a7c15);
        rng.next_u32();
        rng
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        (self.uniform() * n as f64) as usize % n.max(1)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Pcg64::new(7);
        let mut b = Pcg64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval_and_roughly_centered() {
        let mut rng = Pcg64::new(123);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_has_unit_variance() {
        let mut rng = Pcg64::new(9);
        let n = 20_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Pcg64::new(5);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
