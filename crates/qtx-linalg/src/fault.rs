//! Deterministic fault injection for the robustness test battery.
//!
//! Long (k × E × bias) sweeps only earn trust if the recovery machinery —
//! the per-point escalation ladder, the sweep health accounting and the
//! checkpoint/resume path in `qtx-core` — is exercised against *actual*
//! failures. Real OBC failures cluster near band edges and resonances and
//! are hard to provoke on demand, so this module fails a configurable
//! fraction of calls at three chokepoints instead:
//!
//! * `factor_poly` — the per-quadrature-node factorization inside
//!   FEAST/Beyn ([`crate::lu`] through `CompanionPencil::factor_poly_ws`);
//! * `self_energy` — the whole OBC build of one contact;
//! * `splitsolve` — the Eq. 5 interior solve.
//!
//! Decisions are **deterministic and order-free**: whether a call fails
//! depends only on `(seed, site, key)` where `key` hashes the call's
//! mathematical identity (energy, shift, broadening, operand bits) — never
//! on a global call counter. Parallel quadrature workers, re-ordered
//! sweeps and checkpoint resumes therefore see byte-identical fault
//! patterns, which is what lets the battery assert bit-identical recovery.
//! A retry of the *same* computation fails again; an escalation that
//! changes the broadening, the quadrature or the method changes the key
//! and gets a fresh draw — exactly the contract the escalation ladder is
//! built against.
//!
//! Everything here is compiled only under the `fault-inject` cargo
//! feature; without it [`should_fail`] is a `const false` the optimizer
//! deletes. With the feature on, injection still stays dormant until
//! configured programmatically ([`set_config`]) or through the
//! `QTX_FAULT_INJECT` environment hook, e.g.
//! `QTX_FAULT_INJECT=rate=0.2,seed=7,sites=factor_poly|self_energy|splitsolve`.

#[cfg(feature = "fault-inject")]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Once, RwLock};

    /// Which chokepoints a configuration arms.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FaultSites {
        /// `CompanionPencil::factor_poly_ws` (FEAST/Beyn quadrature LU).
        pub factor_poly: bool,
        /// `qtx_obc::self_energy` (whole-contact OBC build).
        pub self_energy: bool,
        /// `SplitSolve::solve_ws` (interior solve).
        pub splitsolve: bool,
        /// Pre-solve panic in `qtx-core`'s scheduler workers. Unlike the
        /// three chokepoints above, a hit here *panics* instead of
        /// returning a typed error, bypassing the escalation ladder —
        /// it exercises the pool's `catch_unwind` isolation. Opt-in only:
        /// never armed by [`FaultSites::all`] or `sites=all`.
        pub sched_panic: bool,
    }

    impl FaultSites {
        /// Every error-returning site armed (`sched_panic` stays off —
        /// see its field docs).
        pub fn all() -> Self {
            FaultSites {
                factor_poly: true,
                self_energy: true,
                splitsolve: true,
                sched_panic: false,
            }
        }

        fn armed(&self, site: &str) -> bool {
            match site {
                "factor_poly" => self.factor_poly,
                "self_energy" => self.self_energy,
                "splitsolve" => self.splitsolve,
                "sched_panic" => self.sched_panic,
                _ => false,
            }
        }
    }

    /// One injection campaign.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct FaultConfig {
        /// Fraction of calls to fail in `[0, 1]`.
        pub rate: f64,
        /// Seed decorrelating campaigns.
        pub seed: u64,
        /// Armed chokepoints.
        pub sites: FaultSites,
    }

    impl FaultConfig {
        /// All sites at `rate` under `seed`.
        pub fn new(rate: f64, seed: u64) -> Self {
            FaultConfig { rate, seed, sites: FaultSites::all() }
        }

        /// Parses the `QTX_FAULT_INJECT` format:
        /// `rate=0.2,seed=7,sites=factor_poly|self_energy|splitsolve`
        /// (a bare number is shorthand for `rate=<x>` with all sites).
        pub fn parse(s: &str) -> Option<FaultConfig> {
            let s = s.trim();
            if s.is_empty() {
                return None;
            }
            if let Ok(rate) = s.parse::<f64>() {
                return Some(FaultConfig::new(rate, 0));
            }
            let mut cfg = FaultConfig::new(0.0, 0);
            for kv in s.split(',') {
                let (k, v) = kv.split_once('=')?;
                match k.trim() {
                    "rate" => cfg.rate = v.trim().parse().ok()?,
                    "seed" => cfg.seed = v.trim().parse().ok()?,
                    "sites" => {
                        let mut sites = FaultSites {
                            factor_poly: false,
                            self_energy: false,
                            splitsolve: false,
                            sched_panic: false,
                        };
                        for site in v.split('|') {
                            match site.trim() {
                                "factor_poly" => sites.factor_poly = true,
                                "self_energy" => sites.self_energy = true,
                                "splitsolve" => sites.splitsolve = true,
                                "sched_panic" => sites.sched_panic = true,
                                "all" => {
                                    let keep = sites.sched_panic;
                                    sites = FaultSites::all();
                                    sites.sched_panic = keep;
                                }
                                _ => return None,
                            }
                        }
                        cfg.sites = sites;
                    }
                    _ => return None,
                }
            }
            Some(cfg)
        }
    }

    static CONFIG: RwLock<Option<FaultConfig>> = RwLock::new(None);
    static ENV_HOOK: Once = Once::new();
    static INJECTED: AtomicU64 = AtomicU64::new(0);

    /// Installs (or clears) the active campaign programmatically; wins
    /// over the environment hook. Tests use this to arm and disarm
    /// injection without process-global env races.
    pub fn set_config(cfg: Option<FaultConfig>) {
        ENV_HOOK.call_once(|| {}); // suppress a later env read
        *CONFIG.write().expect("fault config lock") = cfg;
    }

    /// Active campaign, pulling `QTX_FAULT_INJECT` on first use.
    pub fn config() -> Option<FaultConfig> {
        ENV_HOOK.call_once(|| {
            if let Ok(v) = std::env::var("QTX_FAULT_INJECT") {
                if let Some(cfg) = FaultConfig::parse(&v) {
                    *CONFIG.write().expect("fault config lock") = Some(cfg);
                } else {
                    eprintln!("QTX_FAULT_INJECT: unparsable value {v:?}; injection disarmed");
                }
            }
        });
        *CONFIG.read().expect("fault config lock")
    }

    /// Total faults injected by this process (across every site/thread).
    pub fn injected_total() -> u64 {
        INJECTED.load(Ordering::Relaxed)
    }

    /// True while a campaign with a positive rate is installed. Layers
    /// whose *caching* could change how often the chokepoints are reached
    /// (and therefore how many faults a run draws) consult this to stand
    /// down for the duration of a campaign, keeping fault batteries
    /// byte-identical to the uncached path.
    pub fn armed() -> bool {
        config().is_some_and(|c| c.rate > 0.0)
    }

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// FNV-1a over a site name (compile-time-constant strings).
    fn site_hash(site: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in site.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Deterministic draw: does this `(site, key)` call fail under the
    /// active campaign? Increments the process-wide counter on a hit.
    pub fn should_fail(site: &'static str, key: u64) -> bool {
        let Some(cfg) = config() else { return false };
        if cfg.rate <= 0.0 || !cfg.sites.armed(site) {
            return false;
        }
        let draw = splitmix(cfg.seed ^ site_hash(site) ^ key.rotate_left(17));
        let frac = (draw >> 11) as f64 / (1u64 << 53) as f64;
        let hit = frac < cfg.rate;
        if hit {
            INJECTED.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Mixes f64 bit patterns into an injection key (order-sensitive, so
    /// `key(&[e, eta])` ≠ `key(&[eta, e])`).
    pub fn key_of(parts: &[f64]) -> u64 {
        let mut h = 0x51_7c_c1_b7_27_22_0a_95u64;
        for p in parts {
            h = splitmix(h ^ p.to_bits());
        }
        h
    }
}

#[cfg(feature = "fault-inject")]
pub use imp::{
    armed, config, injected_total, key_of, set_config, should_fail, FaultConfig, FaultSites,
};

/// No-op twin compiled without the `fault-inject` feature: the call sites
/// stay unconditional and the optimizer removes them.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn should_fail(_site: &'static str, _key: u64) -> bool {
    false
}

/// See the feature-gated twin; always 0 without `fault-inject`.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn injected_total() -> u64 {
    0
}

/// See the feature-gated twin; constant without `fault-inject`.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn key_of(_parts: &[f64]) -> u64 {
    0
}

/// See the feature-gated twin; never armed without `fault-inject`.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn armed() -> bool {
    false
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_bounded() {
        set_config(Some(FaultConfig::new(0.25, 42)));
        let first: Vec<bool> =
            (0..4000).map(|i| should_fail("factor_poly", key_of(&[i as f64]))).collect();
        let second: Vec<bool> =
            (0..4000).map(|i| should_fail("factor_poly", key_of(&[i as f64]))).collect();
        assert_eq!(first, second, "same (site, key) must draw identically");
        let hits = first.iter().filter(|&&b| b).count();
        // 4000 draws at 25%: a ±5σ band around 1000.
        assert!((850..1150).contains(&hits), "hit rate off: {hits}/4000");
        set_config(None);
        assert!(!should_fail("factor_poly", 123), "disarmed campaign must not fire");
    }

    #[test]
    fn sites_gate_independently_and_counter_accumulates() {
        let mut cfg = FaultConfig::new(1.0, 7);
        cfg.sites.splitsolve = false;
        set_config(Some(cfg));
        let before = injected_total();
        assert!(should_fail("self_energy", 1));
        assert!(!should_fail("splitsolve", 1));
        assert!(!should_fail("unknown_site", 1));
        assert_eq!(injected_total() - before, 1, "only the armed hit counts");
        set_config(None);
    }

    #[test]
    fn env_format_parses() {
        let cfg = FaultConfig::parse("rate=0.2,seed=7,sites=factor_poly|splitsolve").unwrap();
        assert_eq!(cfg.rate, 0.2);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.sites.factor_poly && cfg.sites.splitsolve && !cfg.sites.self_energy);
        let bare = FaultConfig::parse("0.5").unwrap();
        assert_eq!(bare.rate, 0.5);
        assert!(bare.sites.self_energy);
        assert!(FaultConfig::parse("rate=x").is_none());
        assert!(FaultConfig::parse("sites=bogus").is_none());
    }

    #[test]
    fn sched_panic_site_is_strictly_opt_in() {
        // Neither the programmatic `all()` nor the `sites=all` shorthand
        // may arm the panic site: it bypasses the escalation ladder and
        // must only fire in campaigns that asked for it by name.
        assert!(!FaultSites::all().sched_panic);
        assert!(!FaultConfig::new(1.0, 0).sites.sched_panic);
        let all = FaultConfig::parse("rate=1.0,sites=all").unwrap();
        assert!(all.sites.factor_poly && !all.sites.sched_panic);
        let explicit = FaultConfig::parse("rate=1.0,sites=sched_panic").unwrap();
        assert!(explicit.sites.sched_panic && !explicit.sites.splitsolve);
        let mixed = FaultConfig::parse("rate=1.0,sites=sched_panic|all").unwrap();
        assert!(mixed.sites.sched_panic && mixed.sites.splitsolve);
        set_config(Some(explicit));
        let before = injected_total();
        assert!(should_fail("sched_panic", 1), "rate 1.0 must fire the armed site");
        assert!(!should_fail("splitsolve", 1), "unarmed sites stay quiet");
        assert_eq!(injected_total() - before, 1);
        set_config(None);
    }
}
