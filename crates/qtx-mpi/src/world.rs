//! Rank spawning and the communication cost model.

use crate::comm::{Comm, Fabric};
use std::sync::Arc;

/// Latency/bandwidth model of the interconnect (Cray Gemini/Aries class).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-message latency (s).
    pub latency: f64,
    /// Link bandwidth (bytes/s).
    pub bandwidth: f64,
}

impl CostModel {
    /// Cray Gemini (Titan-era) figures: ~1.5 µs latency, ~6 GB/s per link.
    pub fn gemini() -> Self {
        CostModel { latency: 1.5e-6, bandwidth: 6.0e9 }
    }

    /// Time to move one message of `bytes`.
    pub fn msg_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time of a binary-tree collective over `ranks` with `bytes` payload.
    pub fn collective_time(&self, ranks: usize, bytes: usize) -> f64 {
        (ranks.max(1) as f64).log2().ceil().max(1.0) * self.msg_time(bytes)
    }
}

/// Spawns `n` ranks, each running `f(comm)`, and returns their outputs in
/// rank order. Panics in any rank propagate (failing tests loudly rather
/// than deadlocking).
pub fn run_world<T, F>(n: usize, cost: CostModel, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Comm) -> T + Send + Sync + 'static,
{
    assert!(n >= 1);
    let fabric = Arc::new(Fabric::new(n, cost));
    let f = Arc::new(f);
    let mut handles = Vec::with_capacity(n);
    for rank in 0..n {
        let fabric = Arc::clone(&fabric);
        let f = Arc::clone(&f);
        handles.push(
            std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .spawn(move || {
                    let comm = Comm::world(fabric, rank, n);
                    f(comm)
                })
                .expect("spawn rank"),
        );
    }
    handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_all_ranks() {
        let out = run_world(4, CostModel::gemini(), |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn cost_model_scales() {
        let m = CostModel::gemini();
        assert!(m.msg_time(1_000_000) > m.msg_time(10));
        assert!(m.collective_time(1024, 8) > m.collective_time(2, 8));
    }
}
