//! # qtx-mpi — simulated message passing (§4, Fig. 9)
//!
//! OMEN distributes its workload with MPI through "a hierarchical
//! organization of communicators": momentum `k` at the top, energy `E`
//! below it, and a 1-D spatial domain decomposition at the bottom. No MPI
//! runtime exists here, so this crate provides the documented
//! substitution: ranks run as OS threads and exchange messages through
//! crossbeam channels, with the same communicator semantics
//! (`split`, `barrier`, `bcast`, `allreduce`, `gather`, point-to-point)
//! plus a latency/bandwidth cost model feeding the virtual timeline.
//!
//! Real runs exercise dozens of ranks (tests, examples, Fig. 9
//! reproduction); the 18 564-node experiments replay through the analytic
//! model in `qtx-machine`, mirroring how the paper extrapolates from
//! per-energy-point measurements.

pub mod comm;
pub mod frame;
pub mod world;

pub use comm::Comm;
pub use frame::{exact_frames, FrameError};
pub use world::{run_world, CostModel};
