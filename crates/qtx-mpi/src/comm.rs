//! Communicators over the thread fabric.
//!
//! Semantics follow MPI: ranks address each other by *local* rank inside a
//! communicator, `split` produces disjoint sub-communicators (the k-, E-
//! and domain-levels of Fig. 9), and collectives are implemented on top of
//! matched point-to-point messages. Every operation advances the calling
//! rank's virtual communication clock through the [`CostModel`].

use crate::world::CostModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::Arc;

struct Msg {
    src_world: usize,
    comm_id: u64,
    tag: u64,
    payload: Vec<u8>,
}

/// Shared transport: one mailbox per world rank plus virtual clocks.
pub struct Fabric {
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Mutex<Receiver<Msg>>>,
    pending: Vec<Mutex<Vec<Msg>>>,
    vtime: Vec<Mutex<f64>>,
    cost: CostModel,
}

impl Fabric {
    /// Builds the transport for `n` world ranks.
    pub fn new(n: usize, cost: CostModel) -> Self {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Mutex::new(rx));
        }
        Fabric {
            senders,
            receivers,
            pending: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            vtime: (0..n).map(|_| Mutex::new(0.0)).collect(),
            cost,
        }
    }

    fn advance(&self, world_rank: usize, seconds: f64) {
        *self.vtime[world_rank].lock() += seconds;
    }

    /// Accumulated virtual communication time of a world rank.
    pub fn vtime_of(&self, world_rank: usize) -> f64 {
        *self.vtime[world_rank].lock()
    }
}

/// An MPI-like communicator.
pub struct Comm {
    fabric: Arc<Fabric>,
    comm_id: u64,
    /// World ranks of the members, indexed by local rank.
    members: Arc<Vec<usize>>,
    rank: usize,
    op_seq: Cell<u64>,
    split_seq: Cell<u64>,
}

/// Reserved tag space for internal collective traffic.
const INTERNAL: u64 = 1 << 48;

impl Comm {
    /// World communicator for `rank` of `n`.
    pub fn world(fabric: Arc<Fabric>, rank: usize, n: usize) -> Self {
        Comm {
            fabric,
            comm_id: 1,
            members: Arc::new((0..n).collect()),
            rank,
            op_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }

    /// Local rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank backing a local rank.
    pub fn world_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Virtual communication time accumulated by this rank.
    pub fn comm_time(&self) -> f64 {
        self.fabric.vtime_of(self.members[self.rank])
    }

    /// Point-to-point send (non-blocking semantics: buffered channel).
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        let t = self.fabric.cost.msg_time(payload.len());
        self.fabric.advance(self.members[self.rank], t);
        let msg = Msg { src_world: self.members[self.rank], comm_id: self.comm_id, tag, payload };
        self.fabric.senders[self.members[dst]].send(msg).expect("fabric closed");
    }

    /// Blocking receive matched on `(src, tag)`.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<u8> {
        let me = self.members[self.rank];
        let want_src = self.members[src];
        loop {
            {
                let mut pend = self.fabric.pending[me].lock();
                if let Some(pos) = pend.iter().position(|m| {
                    m.src_world == want_src && m.tag == tag && m.comm_id == self.comm_id
                }) {
                    let m = pend.swap_remove(pos);
                    let t = self.fabric.cost.msg_time(m.payload.len());
                    self.fabric.advance(me, t);
                    return m.payload;
                }
            }
            let msg = self.fabric.receivers[me].lock().recv().expect("fabric closed");
            self.fabric.pending[me].lock().push(msg);
        }
    }

    fn next_op_tag(&self) -> u64 {
        let s = self.op_seq.get();
        self.op_seq.set(s + 1);
        INTERNAL + s
    }

    /// Synchronizes all members (gather-then-release through rank 0).
    pub fn barrier(&self) {
        let tag = self.next_op_tag();
        if self.rank == 0 {
            for r in 1..self.size() {
                let _ = self.recv(r, tag);
            }
            for r in 1..self.size() {
                self.send(r, tag + INTERNAL, Vec::new());
            }
        } else {
            self.send(0, tag, Vec::new());
            let _ = self.recv(0, tag + INTERNAL);
        }
        self.fabric
            .advance(self.members[self.rank], self.fabric.cost.collective_time(self.size(), 8));
    }

    /// Broadcast from `root` (`MPI_Bcast` — how H and S reach all ranks,
    /// §4: "the resulting data are then distributed to all the available
    /// MPI ranks with MPI_Bcast").
    pub fn bcast(&self, root: usize, data: &mut Vec<u8>) {
        let tag = self.next_op_tag();
        if self.rank == root {
            for r in 0..self.size() {
                if r != root {
                    self.send(r, tag, data.clone());
                }
            }
        } else {
            *data = self.recv(root, tag);
        }
        self.fabric.advance(
            self.members[self.rank],
            self.fabric.cost.collective_time(self.size(), data.len()),
        );
    }

    /// Gathers byte payloads at `root` (returns `None` elsewhere).
    pub fn gather(&self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let tag = self.next_op_tag();
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size()];
            out[root] = data;
            for (r, slot) in out.iter_mut().enumerate() {
                if r != root {
                    *slot = self.recv(r, tag);
                }
            }
            Some(out)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// All-reduce (sum) over per-rank f64 vectors.
    pub fn allreduce_sum(&self, vals: &[f64]) -> Vec<f64> {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let gathered = self.gather(0, bytes);
        let mut result = vec![0.0; vals.len()];
        if self.rank == 0 {
            for payload in gathered.expect("root gathers") {
                for (i, chunk) in payload.chunks_exact(8).enumerate() {
                    result[i] += f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                }
            }
        }
        let mut out_bytes: Vec<u8> = result.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.bcast(0, &mut out_bytes);
        out_bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }

    /// All-gather of one f64 triple per rank (used by `split`).
    fn allgather3(&self, v: [f64; 3]) -> Vec<[f64; 3]> {
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        let gathered = self.gather(0, bytes);
        let mut flat: Vec<u8> = Vec::new();
        if self.rank == 0 {
            for p in gathered.expect("root") {
                flat.extend_from_slice(&p);
            }
        }
        self.bcast(0, &mut flat);
        flat.chunks_exact(24)
            .map(|c| {
                [
                    f64::from_le_bytes(c[0..8].try_into().expect("8")),
                    f64::from_le_bytes(c[8..16].try_into().expect("8")),
                    f64::from_le_bytes(c[16..24].try_into().expect("8")),
                ]
            })
            .collect()
    }

    /// Splits into sub-communicators by `color`, ordering members by
    /// `(key, old rank)` — `MPI_Comm_split`, the mechanism behind the
    /// momentum/energy/domain hierarchy of Fig. 9.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        let info = self.allgather3([color as f64, key as f64, self.rank as f64]);
        let mut members: Vec<(usize, usize)> = info
            .iter()
            .filter(|t| t[0] as usize == color)
            .map(|t| (t[1] as usize, t[2] as usize))
            .collect();
        members.sort_unstable();
        let world_members: Vec<usize> =
            members.iter().map(|&(_, old_local)| self.members[old_local]).collect();
        let my_world = self.members[self.rank];
        let new_rank = world_members
            .iter()
            .position(|&w| w == my_world)
            .expect("caller must be in its own color group");
        let epoch = self.split_seq.get();
        self.split_seq.set(epoch + 1);
        // Deterministic id shared by all members of the same color/epoch.
        let comm_id = self
            .comm_id
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((color as u64) << 20)
            .wrapping_add(epoch + 1);
        Comm {
            fabric: Arc::clone(&self.fabric),
            comm_id,
            members: Arc::new(world_members),
            rank: new_rank,
            op_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_world;

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_world(2, CostModel::gemini(), |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1, 2, 3]);
                c.recv(1, 8)
            } else {
                let got = c.recv(0, 7);
                c.send(0, 8, vec![got[2], got[1], got[0]]);
                got
            }
        });
        assert_eq!(out[0], vec![3, 2, 1]);
        assert_eq!(out[1], vec![1, 2, 3]);
    }

    #[test]
    fn bcast_reaches_everyone() {
        let out = run_world(5, CostModel::gemini(), |c| {
            let mut data = if c.rank() == 2 { vec![42u8, 43] } else { Vec::new() };
            c.bcast(2, &mut data);
            data
        });
        for o in out {
            assert_eq!(o, vec![42, 43]);
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run_world(4, CostModel::gemini(), |c| c.allreduce_sum(&[c.rank() as f64, 1.0]));
        for o in out {
            assert_eq!(o, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn split_builds_disjoint_groups() {
        // 6 ranks → 2 colors of 3; inside each group ranks renumber 0..3.
        let out = run_world(6, CostModel::gemini(), |c| {
            let color = c.rank() % 2;
            let sub = c.split(color, c.rank());
            // Sum of world ranks inside the subgroup.
            let s = sub.allreduce_sum(&[c.rank() as f64]);
            (color, sub.rank(), sub.size(), s[0] as usize)
        });
        for (color, sub_rank, sub_size, sum) in out {
            assert_eq!(sub_size, 3);
            assert!(sub_rank < 3);
            let expected = if color == 0 { 2 + 4 } else { 1 + 3 + 5 };
            assert_eq!(sum, expected);
        }
    }

    #[test]
    fn hierarchical_split_like_fig9() {
        // 8 ranks → 2 k-groups × 2 E-groups × 2 domain ranks.
        let out = run_world(8, CostModel::gemini(), |c| {
            let k_comm = c.split(c.rank() / 4, c.rank());
            let e_comm = k_comm.split(k_comm.rank() / 2, k_comm.rank());
            (k_comm.size(), e_comm.size(), e_comm.rank())
        });
        for (ks, es, er) in out {
            assert_eq!(ks, 4);
            assert_eq!(es, 2);
            assert!(er < 2);
        }
    }

    #[test]
    fn barrier_and_vtime_accounting() {
        let out = run_world(3, CostModel::gemini(), |c| {
            c.barrier();
            c.comm_time()
        });
        for t in out {
            assert!(t > 0.0, "collectives must cost virtual time");
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let out = run_world(3, CostModel::gemini(), |c| c.gather(0, vec![c.rank() as u8]));
        assert_eq!(out[0].as_ref().unwrap().len(), 3);
        for (r, payload) in out[0].as_ref().unwrap().iter().enumerate() {
            assert_eq!(payload[0] as usize, r);
        }
        assert!(out[1].is_none() && out[2].is_none());
    }
}
