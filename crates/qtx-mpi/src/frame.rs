//! Fixed-size record framing for gathered payloads.
//!
//! Every collective in this fabric moves raw `Vec<u8>` payloads; sweep
//! results travel as streams of fixed-size little-endian records. A
//! truncated or misaligned payload previously decoded through
//! `chunks_exact`, which silently drops the trailing partial frame — a
//! corrupted gather then looks like a shorter, *valid* result. These
//! helpers make framing explicit and loud.

/// A payload whose length is not a whole number of frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameError {
    /// Expected frame size in bytes.
    pub frame_size: usize,
    /// Offending payload length.
    pub payload_len: usize,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "payload of {} bytes is not a whole number of {}-byte frames ({} trailing)",
            self.payload_len,
            self.frame_size,
            self.payload_len % self.frame_size.max(1)
        )
    }
}

impl std::error::Error for FrameError {}

/// Splits `payload` into exact `frame_size`-byte frames, rejecting any
/// trailing partial frame instead of dropping it.
pub fn exact_frames(
    payload: &[u8],
    frame_size: usize,
) -> Result<std::slice::ChunksExact<'_, u8>, FrameError> {
    if frame_size == 0 || !payload.len().is_multiple_of(frame_size) {
        return Err(FrameError { frame_size, payload_len: payload.len() });
    }
    Ok(payload.chunks_exact(frame_size))
}

/// Little-endian `f64` at byte offset `off` of a frame.
pub fn read_f64(frame: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(frame[off..off + 8].try_into().expect("8 bytes"))
}

/// Little-endian `u32` at byte offset `off` of a frame.
pub fn read_u32(frame: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(frame[off..off + 4].try_into().expect("4 bytes"))
}

/// Little-endian `u16` at byte offset `off` of a frame.
pub fn read_u16(frame: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(frame[off..off + 2].try_into().expect("2 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_frames_decode() {
        let payload = [0u8; 96];
        let frames: Vec<&[u8]> = exact_frames(&payload, 32).unwrap().collect();
        assert_eq!(frames.len(), 3);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let payload = [0u8; 33];
        let err = exact_frames(&payload, 32).unwrap_err();
        assert_eq!(err, FrameError { frame_size: 32, payload_len: 33 });
        assert!(err.to_string().contains("1 trailing"));
    }

    #[test]
    fn zero_frame_size_is_rejected() {
        assert!(exact_frames(&[], 0).is_err());
    }

    #[test]
    fn field_readers_roundtrip() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&7u32.to_le_bytes());
        frame.extend_from_slice(&3u16.to_le_bytes());
        frame.extend_from_slice(&(-1.25f64).to_le_bytes());
        assert_eq!(read_u32(&frame, 0), 7);
        assert_eq!(read_u16(&frame, 4), 3);
        assert_eq!(read_f64(&frame, 6), -1.25);
    }
}
