//! Companion linearization of the lead polynomial eigenvalue problem.
//!
//! Folding (lead.rs) reduces Eq. 6 to the quadratic pencil
//!
//! ```text
//! (T10 + λ·T00 + λ²·T01) u = 0,      T = E·S − H,  λ = e^{i·k_B}
//! ```
//!
//! linearized as `A·x = λ·B·x` with `x = [λu; u]`,
//!
//! ```text
//! A = ⎡−T00  −T10⎤        B = ⎡T01  0⎤
//!     ⎣  I     0 ⎦            ⎣ 0   I⎦
//! ```
//!
//! of size `NBC = 2·nf = 2·NBW·n` (the paper's Eq. 8–9 companion). The
//! linear systems `(z·B − A)·x = y` that dominate FEAST (Eq. 10) reduce
//! analytically to one `nf`-sized solve of the polynomial evaluated at `z`
//! — the paper's "through an analytical block LU decomposition, their size
//! can be decreased" remark — implemented in [`CompanionPencil::solve_shifted`].

use crate::lead::LeadBlocks;
use qtx_linalg::{
    gemm_view, lu_factor, lu_factor_owned_ws, Complex64, LuFactors, Op, Result, Workspace, ZMat,
};

/// The quadratic companion pencil of a lead at fixed energy.
#[derive(Debug, Clone)]
pub struct CompanionPencil {
    /// `T00 = E·S00 − H00`.
    pub t00: ZMat,
    /// `T01 = E·S01 − H01`.
    pub t01: ZMat,
    /// `T10 = E·S01ᴴ − H01ᴴ`.
    pub t10: ZMat,
    /// Superblock dimension `nf`.
    pub nf: usize,
}

impl CompanionPencil {
    /// Builds the pencil at energy `e` (+iη broadening).
    pub fn at_energy(lead: &LeadBlocks, e: f64, eta: f64) -> Self {
        let (t00, t01, t10) = lead.t_blocks(e, eta);
        CompanionPencil { nf: t00.rows(), t00, t01, t10 }
    }

    /// Companion size `NBC = 2·nf`.
    pub fn nbc(&self) -> usize {
        2 * self.nf
    }

    /// Dense companion matrix `A` (tests and Rayleigh–Ritz products).
    pub fn a_dense(&self) -> ZMat {
        let nf = self.nf;
        let mut a = ZMat::zeros(2 * nf, 2 * nf);
        a.set_block(0, 0, &(-&self.t00));
        a.set_block(0, nf, &(-&self.t10));
        a.set_block(nf, 0, &ZMat::identity(nf));
        a
    }

    /// Dense companion matrix `B`.
    pub fn b_dense(&self) -> ZMat {
        let nf = self.nf;
        let mut b = ZMat::zeros(2 * nf, 2 * nf);
        b.set_block(0, 0, &self.t01);
        b.set_block(nf, nf, &ZMat::identity(nf));
        b
    }

    /// Applies `B` to a block vector without materializing it.
    pub fn apply_b(&self, y: &ZMat) -> ZMat {
        self.apply_b_ws(y, &Workspace::new())
    }

    /// [`CompanionPencil::apply_b`] over pooled scratch: the halves of `y`
    /// are read through zero-copy block views and the only product writes
    /// into a recycled buffer.
    pub fn apply_b_ws(&self, y: &ZMat, ws: &Workspace) -> ZMat {
        let nf = self.nf;
        assert_eq!(y.rows(), 2 * nf);
        let m = y.cols();
        let y1 = y.block_view(0, 0, nf, m);
        let y2 = y.block_view(nf, 0, nf, m);
        let top = ws.matmul_op_view(self.t01.view(), Op::None, y1, Op::None);
        let mut out = ws.take(2 * nf, m);
        out.set_block(0, 0, &top);
        ws.recycle(top);
        out.set_block_view(nf, 0, y2);
        out
    }

    /// Applies `A` to a block vector without materializing it.
    pub fn apply_a(&self, y: &ZMat) -> ZMat {
        self.apply_a_ws(y, &Workspace::new())
    }

    /// [`CompanionPencil::apply_a`] over pooled scratch.
    pub fn apply_a_ws(&self, y: &ZMat, ws: &Workspace) -> ZMat {
        let nf = self.nf;
        assert_eq!(y.rows(), 2 * nf);
        let m = y.cols();
        let y1 = y.block_view(0, 0, nf, m);
        let y2 = y.block_view(nf, 0, nf, m);
        // top = −T00·y1 − T10·y2, accumulated in one pooled buffer.
        let mut top = ws.take(nf, m);
        let minus_one = -Complex64::ONE;
        gemm_view(minus_one, self.t00.view(), Op::None, y1, Op::None, Complex64::ZERO, &mut top);
        gemm_view(minus_one, self.t10.view(), Op::None, y2, Op::None, Complex64::ONE, &mut top);
        let mut out = ws.take(2 * nf, m);
        out.set_block(0, 0, &top);
        ws.recycle(top);
        out.set_block_view(nf, 0, y1);
        out
    }

    /// Evaluates the quadratic matrix polynomial `P(z) = z²·T01 + z·T00 + T10`.
    pub fn poly_at(&self, z: Complex64) -> ZMat {
        let mut p = self.t01.scaled(z * z);
        p.axpy(z, &self.t00);
        p.axpy(Complex64::ONE, &self.t10);
        p
    }

    /// Deterministic fault-injection key for this pencil's quadrature
    /// factorizations: mixes the node `z` with pencil content (which
    /// carries `E`, `η` and the lead), so an escalation that changes the
    /// broadening or the quadrature draws a fresh fault decision while a
    /// plain retry of the identical computation fails identically.
    fn injection_key(&self, z: Complex64) -> u64 {
        let t = self.t00[(0, 0)];
        qtx_linalg::fault::key_of(&[z.re, z.im, t.re, t.im])
    }

    /// Factorizes `P(z)` once; reused across all FEAST right-hand sides at
    /// the same integration point.
    pub fn factor_poly(&self, z: Complex64) -> Result<LuFactors> {
        if qtx_linalg::fault::should_fail("factor_poly", self.injection_key(z)) {
            return Err(qtx_linalg::LinalgError::Injected { site: "factor_poly" });
        }
        lu_factor(&self.poly_at(z))
    }

    /// [`CompanionPencil::factor_poly`] with the polynomial evaluation
    /// borrowed from `ws` and factored in place (zero copies), pivot
    /// index buffers included; hand everything back via
    /// [`LuFactors::recycle_into`] when the factors are spent.
    pub fn factor_poly_ws(&self, z: Complex64, ws: &Workspace) -> Result<LuFactors> {
        if qtx_linalg::fault::should_fail("factor_poly", self.injection_key(z)) {
            return Err(qtx_linalg::LinalgError::Injected { site: "factor_poly" });
        }
        let mut p = ws.copy_of(&self.t01);
        p.scale_assign(z * z);
        p.axpy(z, &self.t00);
        p.axpy(Complex64::ONE, &self.t10);
        lu_factor_owned_ws(p, true, ws)
    }

    /// Solves `(z·B − A)·x = y` through the `nf`-sized polynomial solve:
    ///
    /// with `x = [x1; x2]`, `y = [y1; y2]`:
    /// `x1 = z·x2 − y2` and `P(z)·x2 = y1 + (z·T01 + T00)·y2`.
    pub fn solve_shifted(&self, factors: &LuFactors, z: Complex64, y: &ZMat) -> ZMat {
        self.solve_shifted_ws(factors, z, y, &Workspace::new())
    }

    /// [`CompanionPencil::solve_shifted`] over pooled scratch — the form
    /// the FEAST quadrature loop calls once per node per refinement.
    pub fn solve_shifted_ws(
        &self,
        factors: &LuFactors,
        z: Complex64,
        y: &ZMat,
        ws: &Workspace,
    ) -> ZMat {
        let nf = self.nf;
        assert_eq!(y.rows(), 2 * nf);
        let m = y.cols();
        let y1 = y.block_view(0, 0, nf, m);
        let y2 = y.block_view(nf, 0, nf, m);
        // rhs = y1 + (z·T01 + T00)·y2
        let mut zt01_t00 = ws.copy_of(&self.t01);
        zt01_t00.scale_assign(z);
        zt01_t00.axpy(Complex64::ONE, &self.t00);
        let mut rhs = ws.copy_of_view(y1);
        gemm_view(
            Complex64::ONE,
            zt01_t00.view(),
            Op::None,
            y2,
            Op::None,
            Complex64::ONE,
            &mut rhs,
        );
        ws.recycle(zt01_t00);
        // Back-substitution lands straight in a pooled buffer (no fresh
        // RHS-sized allocation per quadrature node).
        let mut x2 = ws.take_scratch(nf, m);
        factors.solve_into(rhs.view(), &mut x2);
        ws.recycle(rhs);
        let mut x = ws.take(2 * nf, m);
        // x1 = z·x2 − y2, written column-wise straight into the output.
        for j in 0..m {
            let x2col = x2.col(j);
            let y2col = y2.col(j);
            let xcol = x.col_mut(j);
            for i in 0..nf {
                xcol[i] = z * x2col[i] - y2col[i];
            }
        }
        x.set_block(nf, 0, &x2);
        ws.recycle(x2);
        x
    }

    /// Residual of a quadratic eigenpair: `‖(T10 + λT00 + λ²T01)u‖₂ / ‖u‖₂`
    /// scaled by the pencil magnitude.
    pub fn residual(&self, lambda: Complex64, u: &[Complex64]) -> f64 {
        let mut p = self.t10.matvec(u);
        let t00u = self.t00.matvec(u);
        let t01u = self.t01.matvec(u);
        let l2 = lambda * lambda;
        for i in 0..p.len() {
            p[i] = p[i] + lambda * t00u[i] + l2 * t01u[i];
        }
        let num = p.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
        let den = u.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
            * (self.t00.norm_max() + self.t01.norm_max() + self.t10.norm_max()).max(1e-300)
            * (1.0 + lambda.norm_sqr());
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtx_linalg::{c64, zgesv};

    fn sample_pencil() -> CompanionPencil {
        // Small Hermitian lead with invertible couplings.
        let mut h00 = ZMat::random(3, 3, 11);
        h00.hermitianize();
        let h01 = ZMat::random(3, 3, 12);
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(3), ZMat::zeros(3, 3));
        CompanionPencil::at_energy(&lead, 0.37, 0.0)
    }

    #[test]
    fn apply_matches_dense() {
        let p = sample_pencil();
        let y = ZMat::random(p.nbc(), 2, 5);
        let a = p.a_dense();
        let b = p.b_dense();
        assert!(p.apply_a(&y).max_diff(&(&a * &y)) < 1e-12);
        assert!(p.apply_b(&y).max_diff(&(&b * &y)) < 1e-12);
    }

    #[test]
    fn shifted_solve_matches_dense_solve() {
        let p = sample_pencil();
        let z = c64(0.8, 0.6); // on the unit circle
        let y = ZMat::random(p.nbc(), 3, 7);
        // Dense reference: (zB − A) x = y.
        let zb_a = &p.b_dense().scaled(z) - &p.a_dense();
        let x_ref = zgesv(&zb_a, &y).unwrap();
        let f = p.factor_poly(z).unwrap();
        let x = p.solve_shifted(&f, z, &y);
        assert!(x.max_diff(&x_ref) < 1e-9, "diff = {:.3e}", x.max_diff(&x_ref));
    }

    #[test]
    fn chain_pencil_roots_on_unit_circle_in_band() {
        // 1-D chain at an in-band energy: quadratic roots are e^{±ik}.
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let p = CompanionPencil::at_energy(&lead, 0.5, 0.0);
        // P(λ) u = 0 reduces to −λ²·(−1)... : t01 = 1, t00 = E, t10 = 1
        // λ² + Eλ/t + 1 → roots with |λ| = 1 for |E| < 2|t|.
        let a = p.a_dense();
        let b = p.b_dense();
        let dec = qtx_linalg::eig_generalized(&a, &b).unwrap();
        for v in &dec.values {
            assert!((v.abs() - 1.0).abs() < 1e-8, "root {v} not on unit circle");
        }
        // Product of roots is 1 (λ·λ* pair e^{ik}·e^{−ik}).
        let prod = dec.values[0] * dec.values[1];
        assert!((prod - Complex64::ONE).abs() < 1e-8);
    }

    #[test]
    fn companion_eigenvector_structure() {
        // For every companion eigenpair, the top block equals λ·(bottom).
        let p = sample_pencil();
        let dec = qtx_linalg::eig_generalized(&p.a_dense(), &p.b_dense()).unwrap();
        let nf = p.nf;
        let mut checked = 0;
        for (j, &lam) in dec.values.iter().enumerate() {
            if !lam.is_finite() || lam.abs() > 1e6 || lam.abs() < 1e-6 {
                continue;
            }
            let top: Vec<Complex64> = (0..nf).map(|i| dec.vectors[(i, j)]).collect();
            let bot: Vec<Complex64> = (0..nf).map(|i| dec.vectors[(nf + i, j)]).collect();
            let bot_norm = bot.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
            if bot_norm < 1e-8 {
                continue;
            }
            for i in 0..nf {
                assert!((top[i] - lam * bot[i]).abs() < 1e-6 * (1.0 + lam.abs()));
            }
            // And the bottom block solves the quadratic pencil.
            assert!(p.residual(lam, &bot) < 1e-8, "pencil residual too large");
            checked += 1;
        }
        assert!(checked >= 2, "need at least a couple of finite eigenpairs");
    }
}
