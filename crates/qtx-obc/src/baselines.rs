//! Baseline OBC algorithms: dense solves, shift-and-invert, decimation.
//!
//! These are the methods the paper's Fig. 8 compares FEAST against:
//!
//! * [`shift_invert_modes`] — ref. [38]'s spectral transformation
//!   `M = (A − σB)⁻¹·B`: every finite eigenvalue `λ` of the pencil maps to
//!   `μ = 1/(λ − σ)` of `M`, so a single dense eigensolve of `M` recovers
//!   the whole finite spectrum (infinite λ land harmlessly at μ = 0). The
//!   cost is a dense `NBC × NBC` factorization *and* eigendecomposition —
//!   "the difficulty to parallelize the shift-and-invert method" is what
//!   motivated FEAST.
//! * [`dense_modes`] — direct `zggev` on the companion (used in tests as
//!   ground truth for small pencils).
//! * [`sancho_rubio`] — the decimation scheme of ref. [40]: an iterative
//!   surface Green's function independent of any eigensolver, used to
//!   cross-validate the mode-based self-energies.

use crate::companion::CompanionPencil;
use crate::error::{ObcError, ObcOutcome};
use qtx_linalg::{c64, eig, lu_factor, lu_factor_ws, zgesv, Complex64, Workspace, ZMat};

/// Directly solves the companion pencil with the dense generalized
/// eigensolver. Returns finite `(λ, u)` pairs (`u` = bottom block).
pub fn dense_modes(pencil: &CompanionPencil) -> ObcOutcome<Vec<(Complex64, Vec<Complex64>)>> {
    // Shift-and-invert with σ well inside the annulus is the most robust
    // dense route (B is singular whenever T01 is): reuse it with σ = 0.83
    // + a fallback shift when σ collides with an eigenvalue.
    shift_invert_modes(pencil, c64(0.83, 0.41))
}

/// Shift-and-invert spectral transformation at shift `σ` (ref. [38]).
///
/// Computes `M = (A − σB)⁻¹·B`, takes its dense eigendecomposition and
/// maps `μ → λ = σ + 1/μ`. All finite pencil eigenvalues are recovered;
/// companion structure gives the quadratic eigenvector as the bottom block.
pub fn shift_invert_modes(
    pencil: &CompanionPencil,
    sigma: Complex64,
) -> ObcOutcome<Vec<(Complex64, Vec<Complex64>)>> {
    let wrap = |e: qtx_linalg::LinalgError| ObcError::ShiftInvert {
        source: Box::new(ObcError::Linalg(e)),
    };
    let nf = pencil.nf;
    let a = pencil.a_dense();
    let b = pencil.b_dense();
    let shifted = &a - &b.scaled(sigma);
    let f = match lu_factor(&shifted) {
        Ok(f) => f,
        Err(_) => {
            // σ hit an eigenvalue: nudge it.
            let sigma2 = sigma + c64(0.017, 0.013);
            lu_factor(&(&a - &b.scaled(sigma2))).map_err(wrap)?
        }
    };
    let m = f.solve(&b);
    let dec = eig(&m).map_err(wrap)?;
    let mut out = Vec::new();
    for (j, &mu) in dec.values.iter().enumerate() {
        if mu.abs() < 1e-10 {
            continue; // λ = ∞: fast-decaying mode, out of every annulus
        }
        let lambda = sigma + mu.inv();
        let u: Vec<Complex64> = (nf..2 * nf).map(|i| dec.vectors[(i, j)]).collect();
        let un = u.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if un < 1e-10 {
            continue; // degenerate companion direction
        }
        // Keep only vectors that actually solve the quadratic pencil; the
        // eigensolver can return junk for clustered μ ≈ 0.
        if pencil.residual(lambda, &u) < 1e-6 {
            out.push((lambda, u));
        }
    }
    if out.is_empty() {
        return Err(ObcError::NoModes { method: "shift-invert" });
    }
    Ok(out)
}

/// Sancho–Rubio decimation: surface block of `A⁻¹` for the semi-infinite
/// block-tridiagonal matrix with diagonal `t00`, upper coupling `t01` and
/// lower coupling `t10` (chain grows away from the surface). Needs a
/// finite broadening (`t00` built at `E + iη`) to converge at in-band
/// energies.
pub fn sancho_rubio(
    t00: &ZMat,
    t01: &ZMat,
    t10: &ZMat,
    tol: f64,
    max_iter: usize,
) -> ObcOutcome<ZMat> {
    // Iteration derived by eliminating odd layers of A·G = 1:
    //   g = δ⁻¹
    //   δs ← δs − α·g·β
    //   δ  ← δ − α·g·β − β·g·α
    //   α  ← −α·g·α,   β ← −β·g·β
    let mut delta_s = t00.clone();
    let mut delta = t00.clone();
    let mut alpha = t01.clone();
    let mut beta = t10.clone();
    let scale = t00.norm_max().max(1.0);
    // All per-iteration temporaries cycle through one pool: each decimation
    // step reuses the buffers the previous one released.
    let ws = Workspace::new();
    for _ in 0..max_iter {
        if alpha.norm_max() < tol * scale && beta.norm_max() < tol * scale {
            return Ok(zgesv(&delta_s, &ZMat::identity(t00.rows()))?);
        }
        let f = lu_factor_ws(&delta, &ws)?;
        let mut g_alpha = ws.take_scratch(alpha.rows(), alpha.cols());
        f.solve_into(alpha.view(), &mut g_alpha); // δ⁻¹ α
        let mut g_beta = ws.take_scratch(beta.rows(), beta.cols());
        f.solve_into(beta.view(), &mut g_beta); // δ⁻¹ β
        f.recycle_into(&ws);
        let a_g_b = ws.matmul(&alpha, &g_beta);
        let b_g_a = ws.matmul(&beta, &g_alpha);
        delta_s.axpy(-Complex64::ONE, &a_g_b);
        delta.axpy(-Complex64::ONE, &a_g_b);
        delta.axpy(-Complex64::ONE, &b_g_a);
        ws.recycle(a_g_b);
        ws.recycle(b_g_a);
        let mut next_alpha = ws.matmul(&alpha, &g_alpha);
        next_alpha.scale_assign(-Complex64::ONE);
        ws.recycle(std::mem::replace(&mut alpha, next_alpha));
        let mut next_beta = ws.matmul(&beta, &g_beta);
        next_beta.scale_assign(-Complex64::ONE);
        ws.recycle(std::mem::replace(&mut beta, next_beta));
        ws.recycle(g_alpha);
        ws.recycle(g_beta);
    }
    // Report how far from converged the couplings still are — the
    // escalation ladder reads the defect to decide whether a broadening
    // bump is worth a retry.
    Err(ObcError::SanchoRubio {
        iterations: max_iter,
        defect: alpha.norm_max().max(beta.norm_max()) / scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lead::LeadBlocks;

    #[test]
    fn dense_modes_of_chain() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, 0.5, 0.0);
        let modes = dense_modes(&pencil).unwrap();
        assert_eq!(modes.len(), 2);
        for (lam, u) in &modes {
            assert!((lam.abs() - 1.0).abs() < 1e-8, "in-band roots on unit circle");
            assert!(pencil.residual(*lam, u) < 1e-9);
        }
    }

    #[test]
    fn shift_invert_agrees_with_dense_for_random_lead() {
        let mut h00 = ZMat::random(3, 3, 21);
        h00.hermitianize();
        let h01 = ZMat::random(3, 3, 22).scaled(c64(0.5, 0.0));
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(3), ZMat::zeros(3, 3));
        let pencil = CompanionPencil::at_energy(&lead, 0.2, 0.0);
        let m1 = shift_invert_modes(&pencil, c64(1.0, 0.3)).unwrap();
        let m2 = shift_invert_modes(&pencil, c64(0.6, -0.8)).unwrap();
        // Same finite spectrum independent of shift (compare annulus part).
        let in_annulus = |v: &Vec<(Complex64, Vec<Complex64>)>| {
            let mut l: Vec<f64> =
                v.iter().map(|(z, _)| z.abs()).filter(|m| (0.25..4.0).contains(m)).collect();
            l.sort_by(|a, b| a.partial_cmp(b).unwrap());
            l
        };
        let l1 = in_annulus(&m1);
        let l2 = in_annulus(&m2);
        assert_eq!(l1.len(), l2.len());
        for (a, b) in l1.iter().zip(&l2) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn sancho_rubio_matches_analytic_1d() {
        // Surface GF of the semi-infinite chain: g = (z − ε − t²g)⁻¹ ⇒
        // g = (z − ε − sqrt((z−ε)² − 4t²)) / (2t²) on the retarded branch.
        let (eps, t) = (0.0, -1.0);
        let e = 0.5;
        let eta = 1e-8;
        let lead = LeadBlocks::chain_1d(eps, t);
        let (t00, t01, t10) = lead.t_blocks(e, eta);
        let g = sancho_rubio(&t00, &t01, &t10, 1e-14, 200).unwrap();
        let z = c64(e - eps, eta);
        let disc = (z * z - c64(4.0 * t * t, 0.0)).sqrt();
        // Retarded branch: Im g < 0.
        let g1 = (z - disc) / (2.0 * t * t);
        let g2 = (z + disc) / (2.0 * t * t);
        let analytic = if g1.im < 0.0 { g1 } else { g2 };
        assert!((g[(0, 0)] - analytic).abs() < 1e-6, "{} vs {analytic}", g[(0, 0)]);
    }

    #[test]
    fn sancho_rubio_out_of_band_is_real() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let (t00, t01, t10) = lead.t_blocks(5.0, 1e-10);
        let g = sancho_rubio(&t00, &t01, &t10, 1e-14, 200).unwrap();
        assert!(g[(0, 0)].im.abs() < 1e-6, "no DOS outside the band");
        // 1/g must satisfy the fixed point: z − t² g = 1/g.
        let z = c64(5.0, 0.0);
        let lhs = z - g[(0, 0)];
        assert!((lhs - g[(0, 0)].inv()).abs() < 1e-6);
    }

    #[test]
    fn sancho_rubio_reports_iterations_and_defect_at_max_iter() {
        // In-band energy at zero broadening: the couplings decay only
        // algebraically, so a 3-iteration cap cannot reach 1e-14.
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let (t00, t01, t10) = lead.t_blocks(0.5, 0.0);
        match sancho_rubio(&t00, &t01, &t10, 1e-14, 3) {
            Err(ObcError::SanchoRubio { iterations, defect }) => {
                assert_eq!(iterations, 3, "diagnostics carry the exhausted cap");
                assert!(defect.is_finite() && defect > 1e-14, "defect {defect}");
            }
            other => panic!("expected SanchoRubio non-convergence, got {other:?}"),
        }
        // The same system converges once broadened — the ladder's η bump.
        let (t00, t01, t10) = lead.t_blocks(0.5, 1e-6);
        assert!(sancho_rubio(&t00, &t01, &t10, 1e-10, 500).is_ok());
    }

    #[test]
    fn decimation_handles_matrix_leads() {
        let mut h00 = ZMat::random(4, 4, 31);
        h00.hermitianize();
        let h01 = ZMat::random(4, 4, 32).scaled(c64(0.4, 0.0));
        let lead = LeadBlocks::new(h00.clone(), h01.clone(), ZMat::identity(4), ZMat::zeros(4, 4));
        let (t00, t01, t10) = lead.t_blocks(0.1, 1e-7);
        let g = sancho_rubio(&t00, &t01, &t10, 1e-13, 300).unwrap();
        // The surface GF satisfies g = (T00 − T01·g·T10)⁻¹ — fixed point.
        let inner = &(&t01 * &g) * &t10;
        let rebuilt = zgesv(&(&t00 - &inner), &ZMat::identity(4)).unwrap();
        assert!(g.max_diff(&rebuilt) < 1e-7);
    }
}
