//! Beyn's integral method for the lead eigenproblem (ref. [43]).
//!
//! §3.A closes with: "FEAST can be modified according to Ref. [43] to
//! further reduce the calculation time". Beyn's method is that
//! modification — instead of FEAST's Rayleigh–Ritz + subspace iteration it
//! extracts the eigenpairs *directly* from two contour moments of the
//! resolvent:
//!
//! ```text
//! A₀ = (1/2πi) ∮ P(z)⁻¹·V̂ dz          A₁ = (1/2πi) ∮ z·P(z)⁻¹·V̂ dz
//! ```
//!
//! With the rank-revealing SVD-like factorization `A₀ = Q·Σ·Wᴴ`, the
//! `m × m` matrix `B = Qᴴ·A₁·W·Σ⁻¹` has exactly the eigenvalues enclosed
//! by the contour, and its eigenvectors lift to the pencil's. One pass —
//! no refinement loop — at the same per-node cost as FEAST's quadrature,
//! which is the claimed saving.
//!
//! The moments are taken of the *companion* resolvent `(z·B − A)⁻¹` (size
//! `2·nf`, so up to `2·nf` enclosed eigenvalues fit in the first moment
//! pair), but each application still reduces to one `nf`-sized polynomial
//! solve through [`CompanionPencil::solve_shifted`] — the same per-node
//! cost as the FEAST quadrature. The annulus is outer-minus-inner circle
//! like the FEAST contour.

use crate::companion::CompanionPencil;
use crate::error::{ObcError, ObcOutcome};
use qtx_linalg::{eig_ws, gemm, zherk, Complex64, Op, Workspace, ZMat};
use rayon::prelude::*;

/// Beyn configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeynConfig {
    /// Quadrature points per circle.
    pub np: usize,
    /// Outer annulus radius (inner = 1/R).
    pub r_outer: f64,
    /// Probe columns (must exceed the enclosed eigen-count).
    pub probes: usize,
    /// Relative singular-value cutoff for the rank truncation.
    pub rank_tol: f64,
    /// Eigenpair residual acceptance threshold.
    pub residual_tol: f64,
}

impl Default for BeynConfig {
    fn default() -> Self {
        BeynConfig { np: 16, r_outer: 16.0, probes: 0, rank_tol: 1e-10, residual_tol: 1e-7 }
    }
}

/// Runs Beyn's method on the annulus of the quadratic pencil. Returns
/// `(λ, u)` pairs like [`crate::feast::feast_annulus`].
///
/// Contour placement caveat: Beyn is a *single-shot* method — eigenvalues
/// sitting close to the integration contour leak into the moments with
/// only `(distance ratio)^{N_p}` suppression and are not cleaned up by a
/// subspace iteration as in FEAST. Keep a factor ≥ ~1.5 between `r_outer`
/// and the nearest excluded eigenvalue (the polish pass rescues mild
/// leakage, not on-contour eigenvalues).
pub fn beyn_annulus(
    pencil: &CompanionPencil,
    cfg: BeynConfig,
) -> ObcOutcome<Vec<(Complex64, Vec<Complex64>)>> {
    beyn_annulus_ws(pencil, cfg, &Workspace::new())
}

/// [`beyn_annulus`] over a caller-supplied buffer pool: the probe block,
/// the two contour moments, the Gram-matrix rank revealer (the "SVD
/// prefactorization" of `A₀`), the small `B` eigenproblem and the polish
/// solves all recycle through `ws`, so a warm OBC sweep allocates no
/// fresh matrices.
pub fn beyn_annulus_ws(
    pencil: &CompanionPencil,
    cfg: BeynConfig,
    ws: &Workspace,
) -> ObcOutcome<Vec<(Complex64, Vec<Complex64>)>> {
    let nbc = pencil.nbc();
    let probes = if cfg.probes == 0 { (pencil.nf + 8).min(nbc) } else { cfg.probes.min(nbc) };
    let mut rank = 0usize;
    // Failures leave carrying the probe count and the revealed moment
    // rank (0 when the quadrature itself failed) — the diagnostics the
    // escalation ladder reads before trying more nodes.
    beyn_core(pencil, cfg, ws, &mut rank).map_err(|source| ObcError::Beyn {
        probes,
        rank,
        source: Box::new(source),
    })
}

/// The quadrature + moment-processing body of [`beyn_annulus_ws`],
/// separated so the entry point can wrap failures with the revealed rank.
fn beyn_core(
    pencil: &CompanionPencil,
    cfg: BeynConfig,
    ws: &Workspace,
    rank_out: &mut usize,
) -> ObcOutcome<Vec<(Complex64, Vec<Complex64>)>> {
    let nf = pencil.nf;
    let nbc = 2 * nf;
    let probes = if cfg.probes == 0 { (nf + 8).min(nbc) } else { cfg.probes.min(nbc) };
    let mut v_hat = ws.take_scratch(nbc, probes);
    v_hat.randomize(0xbe_11);
    // Quadrature nodes: outer circle (+) and inner circle (−), half-step
    // offset to dodge band-edge eigenvalues at ±1.
    let nodes: Vec<(Complex64, f64)> = (0..cfg.np)
        .flat_map(|p| {
            let theta = 2.0 * std::f64::consts::PI * (p as f64 + 0.5) / cfg.np as f64;
            [
                (Complex64::from_polar(cfg.r_outer, theta), 1.0),
                (Complex64::from_polar(1.0 / cfg.r_outer, theta), -1.0),
            ]
        })
        .collect();
    // Moments: A_k = Σ_p w_p (z_p^{k+1}/N_p)·P(z_p)⁻¹·V̂  (the extra z
    // comes from dz = i·z·dθ on the circle). Per-node temporaries —
    // polynomial evaluation, factorization copy, solve buffers — all
    // cycle through the shared pool.
    let partials: Vec<(ZMat, ZMat)> = nodes
        .par_iter()
        .map(|&(z, w)| {
            let f = pencil.factor_poly_ws(z, ws)?;
            let mut s0 = pencil.solve_shifted_ws(&f, z, &v_hat, ws);
            f.recycle_into(ws);
            let mut s1 = ws.copy_of(&s0);
            s0.scale_assign(z.scale(w / cfg.np as f64));
            s1.scale_assign((z * z).scale(w / cfg.np as f64));
            Ok((s0, s1))
        })
        .collect::<qtx_linalg::Result<Vec<_>>>()?;
    let mut a0 = ws.take(nbc, probes);
    let mut a1 = ws.take(nbc, probes);
    for (s0, s1) in partials {
        a0.axpy(Complex64::ONE, &s0);
        a1.axpy(Complex64::ONE, &s1);
        ws.recycle(s0);
        ws.recycle(s1);
    }
    ws.recycle(v_hat);
    // Rank-revealing factorization of A₀ through its Gram matrix
    // (A₀ = Q·Σ·Wᴴ with Q = A₀·W·Σ⁻¹): eigen-decompose A₀ᴴA₀ = W·Σ²·Wᴴ
    // with the Hermitian rank-k update (half the flops of a full gemm).
    let mut gram = ws.take(probes, probes);
    zherk(1.0, a0.view(), Op::Adjoint, 0.0, &mut gram);
    let dec = match eig_ws(&gram, ws) {
        Ok(dec) => dec,
        Err(e) => {
            for m in [gram, a0, a1] {
                ws.recycle(m);
            }
            return Err(e.into());
        }
    };
    ws.recycle(gram);
    let smax = dec.values.iter().map(|v| v.re).fold(0.0f64, f64::max);
    let keep: Vec<usize> =
        (0..probes).filter(|&j| dec.values[j].re > cfg.rank_tol * smax).collect();
    let m = keep.len();
    *rank_out = m;
    if smax <= 0.0 || m == 0 {
        ws.recycle(dec.vectors);
        ws.recycle(a0);
        ws.recycle(a1);
        return Ok(Vec::new()); // empty annulus
    }
    // W_m (probes × m) and Σ_m⁻¹.
    let mut w_m = ws.take(probes, m);
    let mut sig_inv = vec![0.0; m];
    for (jj, &j) in keep.iter().enumerate() {
        for i in 0..probes {
            w_m[(i, jj)] = dec.vectors[(i, j)];
        }
        sig_inv[jj] = 1.0 / dec.values[j].re.sqrt();
    }
    ws.recycle(dec.vectors);
    // Q = A₀·W·Σ⁻¹ (nbc × m). Its columns are orthonormal to roundoff by
    // construction; re-orthonormalizing with QR would rotate Q against the
    // SVD factor and destroy the exact similarity of B below.
    let mut q = ws.matmul(&a0, &w_m);
    for (jj, &si) in sig_inv.iter().enumerate() {
        for i in 0..nbc {
            q[(i, jj)] = q[(i, jj)].scale(si);
        }
    }
    // B = Qᴴ·A₁·W·Σ⁻¹ = Σ⁻¹·Wᴴ·(A₀ᴴ·A₁)·W·Σ⁻¹ (m × m): associating
    // through the probes-sized cross moment A₀ᴴ·A₁ replaces the two
    // nbc-tall products this used to take (A₁·W then Qᴴ·(A₁WΣ⁻¹)) with
    // one nbc-deep gemm plus probes-sized small products — roughly half
    // the moment-processing flops when m ≈ probes.
    let mut cross = ws.take_scratch(probes, probes);
    gemm(Complex64::ONE, &a0, Op::Adjoint, &a1, Op::None, Complex64::ZERO, &mut cross);
    ws.recycle(a0);
    ws.recycle(a1);
    let cw = ws.matmul(&cross, &w_m);
    ws.recycle(cross);
    let mut b = ws.take_scratch(m, m);
    gemm(Complex64::ONE, &w_m, Op::Adjoint, &cw, Op::None, Complex64::ZERO, &mut b);
    ws.recycle(cw);
    ws.recycle(w_m);
    for (jj, &sj) in sig_inv.iter().enumerate() {
        for (i, &si) in sig_inv.iter().enumerate() {
            b[(i, jj)] = b[(i, jj)].scale(si * sj);
        }
    }
    // Eigenpairs of B are the enclosed (λ, lifted u).
    let small = match eig_ws(&b, ws) {
        Ok(small) => small,
        Err(e) => {
            ws.recycle(b);
            ws.recycle(q);
            return Err(e.into());
        }
    };
    ws.recycle(b);
    let lifted = ws.matmul(&q, &small.vectors);
    ws.recycle(q);
    ws.recycle(small.vectors);
    let mut out = Vec::new();
    let lo = 1.0 / cfg.r_outer * 0.999;
    let hi = cfg.r_outer * 1.001;
    for (j, &lam) in small.values.iter().enumerate() {
        let mag = lam.abs();
        if !lam.is_finite() || mag < lo || mag > hi {
            continue;
        }
        // Quadratic eigenvector = bottom block of the companion vector.
        let mut u: Vec<Complex64> = (nf..nbc).map(|i| lifted[(i, j)]).collect();
        let norm = u.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm < 1e-12 {
            continue;
        }
        for z in u.iter_mut() {
            *z = *z / norm;
        }
        let mut lam = lam;
        // Quadrature leakage from eigenvalues just outside the contour
        // perturbs the single-shot moments; polish each candidate with
        // shifted-inverse-iteration steps (one nf-sized solve each) and a
        // quadratic Rayleigh-quotient eigenvalue update. The update is
        // kept only while the residual strictly improves — the Rayleigh
        // roots can be ill-conditioned and throw a near-converged pair
        // away otherwise.
        let mut best_res = pencil.residual(lam, &u);
        for _ in 0..5 {
            if best_res < cfg.residual_tol {
                break;
            }
            match polish(pencil, lam, &u, ws) {
                Some((l2, u2)) => {
                    let r2 = pencil.residual(l2, &u2);
                    if r2 < best_res {
                        lam = l2;
                        u = u2;
                        best_res = r2;
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
        let mag = lam.abs();
        if mag < lo || mag > hi {
            continue;
        }
        // Accept with a leakage allowance: single-shot quadrature limits
        // the attainable residual (contour-placement caveat above).
        if best_res < cfg.residual_tol.max(1e-4) {
            out.push((lam, u));
        }
    }
    ws.recycle(lifted);
    // Deduplicate eigenpairs that polished onto the same root.
    out.sort_by(|a, b| {
        (a.0.re, a.0.im).partial_cmp(&(b.0.re, b.0.im)).unwrap_or(std::cmp::Ordering::Equal)
    });
    out.dedup_by(|a, b| {
        (a.0 - b.0).abs() < 1e-9
            && a.1.iter().zip(&b.1).map(|(x, y)| x.conj() * *y).sum::<Complex64>().abs() > 0.999
    });
    Ok(out)
}

/// One inverse-iteration + Rayleigh-quotient polish step on a quadratic
/// eigenpair candidate.
fn polish(
    pencil: &CompanionPencil,
    lam: Complex64,
    u: &[Complex64],
    ws: &Workspace,
) -> Option<(Complex64, Vec<Complex64>)> {
    let nf = pencil.nf;
    // Shift slightly off the eigenvalue so P(z) stays invertible.
    let z = lam * Complex64::new(1.0 + 1e-7, 1e-7);
    let f = pencil.factor_poly_ws(z, ws).ok()?;
    let mut rhs = ws.take(2 * nf, 1);
    for i in 0..nf {
        rhs[(i, 0)] = u[i] * lam; // companion top block = λ·u
        rhs[(nf + i, 0)] = u[i];
    }
    let y = pencil.solve_shifted_ws(&f, z, &rhs, ws);
    f.recycle_into(ws);
    ws.recycle(rhs);
    let mut u2: Vec<Complex64> = (nf..2 * nf).map(|i| y[(i, 0)]).collect();
    ws.recycle(y);
    let norm = u2.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
    if norm < 1e-300 {
        return None;
    }
    for v in u2.iter_mut() {
        *v = *v / norm;
    }
    // Quadratic Rayleigh quotient: uᴴT01u·λ² + uᴴT00u·λ + uᴴT10u = 0.
    let quad = |m: &ZMat| -> Complex64 {
        let mv = m.matvec(&u2);
        u2.iter().zip(&mv).map(|(a, b)| a.conj() * *b).sum()
    };
    let (a, b, c) = (quad(&pencil.t01), quad(&pencil.t00), quad(&pencil.t10));
    if a.abs() < 1e-300 {
        return Some((lam, u2));
    }
    let disc = (b * b - a * c * 4.0).sqrt();
    let r1 = (-b + disc) / (a * 2.0);
    let r2 = (-b - disc) / (a * 2.0);
    let lam2 = if (r1 - lam).abs() <= (r2 - lam).abs() { r1 } else { r2 };
    Some((lam2, u2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::dense_modes;
    use crate::feast::{feast_annulus, FeastConfig};
    use crate::lead::LeadBlocks;
    use qtx_linalg::{c64, ZMat};

    fn sorted_mags(v: &[(Complex64, Vec<Complex64>)], lo: f64, hi: f64) -> Vec<f64> {
        let mut m: Vec<f64> =
            v.iter().map(|(z, _)| z.abs()).filter(|m| (lo..=hi).contains(m)).collect();
        m.sort_by(|a, b| a.partial_cmp(b).unwrap());
        m
    }

    #[test]
    fn beyn_finds_chain_modes() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, 0.4, 0.0);
        let modes = beyn_annulus(&pencil, BeynConfig::default()).unwrap();
        assert_eq!(modes.len(), 2);
        for (lam, u) in &modes {
            assert!((lam.abs() - 1.0).abs() < 1e-7);
            assert!(pencil.residual(*lam, u) < 1e-9);
        }
    }

    #[test]
    fn beyn_matches_feast_spectrum() {
        let mut h00 = ZMat::random(4, 4, 71);
        h00.hermitianize();
        let h01 = ZMat::random(4, 4, 72).scaled(c64(0.45, 0.0));
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(4), ZMat::zeros(4, 4));
        let pencil = CompanionPencil::at_energy(&lead, 0.2, 0.0);
        // The lead spectrum has magnitudes {0.154, 0.511, 1, 1, 1, 1,
        // 1.958, 6.512}: R = 3 keeps a ≥2× margin between the contours and
        // every excluded eigenvalue (see the contour-placement caveat).
        let beyn =
            beyn_annulus(&pencil, BeynConfig { r_outer: 3.0, ..Default::default() }).unwrap();
        let feast =
            feast_annulus(&pencil, FeastConfig { r_outer: 3.0, np: 16, ..FeastConfig::default() })
                .unwrap()
                .0;
        let (lo, hi) = (1.0 / 2.9, 2.9);
        let b = sorted_mags(&beyn, lo, hi);
        let f = sorted_mags(&feast, lo, hi);
        assert_eq!(b.len(), f.len(), "beyn {b:?} vs feast {f:?}");
        for (x, y) in b.iter().zip(&f) {
            // Single-shot quadrature accuracy (leakage allowance ~1e-4).
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn beyn_matches_dense_annulus() {
        let lead = LeadBlocks::chain_1d(0.3, -0.8);
        let pencil = CompanionPencil::at_energy(&lead, 1.1, 0.0);
        let beyn =
            beyn_annulus(&pencil, BeynConfig { r_outer: 8.0, ..Default::default() }).unwrap();
        let dense = dense_modes(&pencil).unwrap();
        let b = sorted_mags(&beyn, 1.0 / 8.0, 8.0);
        let d = sorted_mags(&dense, 1.0 / 8.0, 8.0);
        assert_eq!(b.len(), d.len());
        for (x, y) in b.iter().zip(&d) {
            assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
    }

    #[test]
    fn beyn_empty_annulus_far_outside_band() {
        let lead = LeadBlocks::chain_1d(0.0, -0.1);
        // E/t = −50 → |λ| ≈ 50 outside R = 8.
        let pencil = CompanionPencil::at_energy(&lead, 5.0, 0.0);
        let modes =
            beyn_annulus(&pencil, BeynConfig { r_outer: 8.0, ..Default::default() }).unwrap();
        assert!(modes.is_empty());
    }

    #[test]
    fn beyn_is_single_pass() {
        // The ref. [43] claim: no refinement iterations. This is
        // structural (the function has no loop), so assert the cost side:
        // one factorization per node only.
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, 0.9, 0.0);
        // Both methods fan their quadrature out over rayon workers, so the
        // comparison needs the process-wide totals.
        let scope = qtx_linalg::FlopScope::start_process();
        let _ = beyn_annulus(&pencil, BeynConfig { np: 8, ..Default::default() }).unwrap();
        let beyn_flops = scope.elapsed();
        let scope = qtx_linalg::FlopScope::start_process();
        let _ = feast_annulus(&pencil, FeastConfig { np: 8, ..FeastConfig::default() }).unwrap();
        let feast_flops = scope.elapsed();
        assert!(
            beyn_flops <= feast_flops * 2,
            "beyn {beyn_flops} should not exceed feast {feast_flops} by much"
        );
    }
}
