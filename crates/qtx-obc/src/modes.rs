//! Lead mode classification and flux normalization.
//!
//! Every finite eigenpair `(λ, u)` of the companion pencil is a Bloch or
//! evanescent lead state `ψ_q = λ^q·u`. Retarded boundary conditions sort
//! them by where they travel or decay:
//!
//! * `|λ| = 1` — propagating; the group velocity
//!   `v = 2·Im(uᴴ·T01·λ·u) / (uᴴ·S(λ)·u)` decides the direction
//!   (derived by differentiating the Bloch condition; `v > 0` moves
//!   towards +x). Propagating modes are normalized to unit flux so
//!   transmission amplitudes square directly to probabilities.
//! * `|λ| < 1` — decays towards +x (right-outgoing);
//! * `|λ| > 1` — decays towards −x (left-outgoing).

use crate::companion::CompanionPencil;
use crate::lead::LeadBlocks;
use qtx_linalg::{Complex64, Workspace, ZMat};

/// Tolerance band around `|λ| = 1` classifying propagating modes.
pub const PROP_TOL: f64 = 1e-6;

/// One classified lead mode.
#[derive(Debug, Clone)]
pub struct ModeSet {
    /// Bloch factor `λ = e^{i·k_B}`.
    pub lambda: Complex64,
    /// Mode vector (folded superblock, flux-normalized when propagating).
    pub u: Vec<Complex64>,
    /// Group velocity (`dE/dk` units); 0 for evanescent modes.
    pub velocity: f64,
    /// True when `|λ| ≈ 1`.
    pub propagating: bool,
}

/// All modes of a lead at one energy, classified for retarded BCs.
#[derive(Debug, Clone)]
pub struct LeadModes {
    /// Modes moving/decaying towards −x (outgoing into the left lead).
    pub left_going: Vec<ModeSet>,
    /// Modes moving/decaying towards +x (outgoing into the right lead).
    pub right_going: Vec<ModeSet>,
}

impl LeadModes {
    /// Count of propagating modes per direction `(left, right)`.
    pub fn propagating_counts(&self) -> (usize, usize) {
        (
            self.left_going.iter().filter(|m| m.propagating).count(),
            self.right_going.iter().filter(|m| m.propagating).count(),
        )
    }

    /// Matrix whose columns are the modes of one direction set.
    pub fn mode_matrix(modes: &[ModeSet], nf: usize) -> ZMat {
        let mut m = ZMat::zeros(nf, modes.len());
        Self::fill_mode_matrix(modes, nf, &mut m);
        m
    }

    /// [`LeadModes::mode_matrix`] over a pooled buffer — the self-energy
    /// assembly builds one of these per contact per energy point, so the
    /// `U` blocks cycle through the workspace like every other temporary.
    pub fn mode_matrix_ws(modes: &[ModeSet], nf: usize, ws: &Workspace) -> ZMat {
        let mut m = ws.take_scratch(nf, modes.len());
        Self::fill_mode_matrix(modes, nf, &mut m);
        m
    }

    fn fill_mode_matrix(modes: &[ModeSet], nf: usize, m: &mut ZMat) {
        for (j, mode) in modes.iter().enumerate() {
            for i in 0..nf {
                m[(i, j)] = mode.u[i];
            }
        }
    }
}

/// Bloch-overlap norm `uᴴ·S(λ)·u` with
/// `S(λ) = S00 + λ·S01 + λ̄⁻¹... = S00 + λ·S01 + λ^{-1}·S01ᴴ` (for
/// propagating modes `λ^{-1} = λ̄`, making the norm real positive).
fn bloch_overlap(lead: &LeadBlocks, lambda: Complex64, u: &[Complex64]) -> f64 {
    let s00u = lead.s00.matvec(u);
    let s01u = lead.s01.matvec(u);
    let s10u = lead.s01.adjoint().matvec(u);
    let mut acc = Complex64::ZERO;
    let li = lambda.inv();
    for i in 0..u.len() {
        acc += u[i].conj() * (s00u[i] + lambda * s01u[i] + li * s10u[i]);
    }
    acc.re.max(1e-12)
}

/// Group velocity of a candidate propagating mode (2·Im(uᴴT01λu)/‖u‖²_S).
fn group_velocity(
    pencil: &CompanionPencil,
    lead: &LeadBlocks,
    lambda: Complex64,
    u: &[Complex64],
) -> f64 {
    let t01u = pencil.t01.matvec(u);
    let mut c = Complex64::ZERO;
    for i in 0..u.len() {
        c += u[i].conj() * t01u[i];
    }
    let ns = bloch_overlap(lead, lambda, u);
    2.0 * (lambda * c).im / ns
}

/// Classifies raw eigenpairs into retarded left-/right-going mode sets,
/// flux-normalizing the propagating ones.
///
/// `pairs` holds `(λ, u)` with `u` the bottom block of the companion
/// eigenvector; non-finite or out-of-range λ are ignored by the caller.
pub fn classify_modes(
    lead: &LeadBlocks,
    pencil: &CompanionPencil,
    pairs: &[(Complex64, Vec<Complex64>)],
) -> LeadModes {
    classify_modes_eta(lead, pencil, pairs, 0.0)
}

/// [`classify_modes`] at finite broadening. A propagating mode of the
/// pencil at `E + iη` sits at `|λ| = e^{−η/|v|}`, not on the unit circle;
/// the fixed [`PROP_TOL`] band would misread it as evanescent (killing
/// its injection and silently zeroing the transmission), so candidates
/// just off the circle are re-tested against the decay their own group
/// velocity predicts.
pub fn classify_modes_eta(
    lead: &LeadBlocks,
    pencil: &CompanionPencil,
    pairs: &[(Complex64, Vec<Complex64>)],
    eta: f64,
) -> LeadModes {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (lambda, u_raw) in pairs {
        let mag = lambda.abs();
        if !lambda.is_finite() || mag < 1e-12 {
            continue;
        }
        let norm = u_raw.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm < 1e-12 {
            continue;
        }
        let mut u: Vec<Complex64> = u_raw.iter().map(|&z| z / norm).collect();
        let mut propagating = (mag - 1.0).abs() < PROP_TOL;
        if !propagating && eta > 0.0 && mag.ln().abs() < 0.05 {
            let v = group_velocity(pencil, lead, *lambda, &u);
            propagating = v.abs() > 1e-9 && mag.ln().abs() <= 2.0 * eta / v.abs() + PROP_TOL;
        }
        if propagating {
            let v = group_velocity(pencil, lead, *lambda, &u);
            // Flux normalization: scale so |v|·‖u‖²_S = 1.
            let ns = bloch_overlap(lead, *lambda, &u);
            let scale = 1.0 / (v.abs() * ns).sqrt().max(1e-12);
            for z in u.iter_mut() {
                *z = z.scale(scale);
            }
            let mode = ModeSet { lambda: *lambda, u, velocity: v, propagating: true };
            if v >= 0.0 {
                right.push(mode);
            } else {
                left.push(mode);
            }
        } else {
            let mode = ModeSet { lambda: *lambda, u, velocity: 0.0, propagating: false };
            if mag < 1.0 {
                right.push(mode); // decays towards +x
            } else {
                left.push(mode); // decays towards −x
            }
        }
    }
    // Deterministic ordering: propagating first, by |Im k| then phase.
    let key = |m: &ModeSet| {
        (
            if m.propagating { 0 } else { 1 },
            ((m.lambda.abs().ln().abs()) * 1e9) as i64,
            (m.lambda.arg() * 1e9) as i64,
        )
    };
    left.sort_by_key(|a| key(a));
    right.sort_by_key(|a| key(a));
    LeadModes { left_going: left, right_going: right }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::dense_modes;

    #[test]
    fn chain_in_band_has_one_mode_each_way() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, 0.3, 0.0);
        let pairs = dense_modes(&pencil).unwrap();
        let modes = classify_modes(&lead, &pencil, &pairs);
        assert_eq!(modes.propagating_counts(), (1, 1));
        // Velocities are opposite and equal in magnitude.
        let vl = modes.left_going[0].velocity;
        let vr = modes.right_going[0].velocity;
        assert!(vl < 0.0 && vr > 0.0);
        assert!((vl + vr).abs() < 1e-9);
        // E = −2 cos k ⇒ v = dE/dk = 2 sin k with k = acos(−E/2).
        let k = (0.3f64 / 2.0).acos();
        assert!((vr - 2.0 * k.sin()).abs() < 1e-6, "v = {vr}");
    }

    #[test]
    fn chain_outside_band_has_only_evanescent() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, 3.0, 0.0);
        let pairs = dense_modes(&pencil).unwrap();
        let modes = classify_modes(&lead, &pencil, &pairs);
        assert_eq!(modes.propagating_counts(), (0, 0));
        assert_eq!(modes.left_going.len(), 1);
        assert_eq!(modes.right_going.len(), 1);
        assert!(modes.left_going[0].lambda.abs() > 1.0);
        assert!(modes.right_going[0].lambda.abs() < 1.0);
        // λ_left · λ_right = 1 (reciprocal pair).
        let prod = modes.left_going[0].lambda * modes.right_going[0].lambda;
        assert!((prod - Complex64::ONE).abs() < 1e-8);
    }

    #[test]
    fn flux_normalization_sets_unit_flux() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, -0.7, 0.0);
        let pairs = dense_modes(&pencil).unwrap();
        let modes = classify_modes(&lead, &pencil, &pairs);
        let m = &modes.right_going[0];
        // Flux = 2·Im(uᴴ T01 λ u) must be ±1 after normalization.
        let t01u = pencil.t01.matvec(&m.u);
        let mut c = Complex64::ZERO;
        for (ui, ti) in m.u.iter().zip(&t01u) {
            c += ui.conj() * *ti;
        }
        let flux = 2.0 * (m.lambda * c).im;
        assert!((flux.abs() - 1.0).abs() < 1e-9, "flux = {flux}");
    }

    #[test]
    fn broadened_propagating_modes_are_rescued() {
        // At E + iη a propagating mode sits at |λ| = e^{−η/|v|} ≉ 1; the
        // η-aware classification must still see it as propagating (the
        // escalation ladder's η rung depends on this — losing the mode
        // silently zeroes the injection and the transmission).
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let eta = 1e-5; // well past PROP_TOL·|v|
        let pencil = CompanionPencil::at_energy(&lead, 0.3, eta);
        let pairs = dense_modes(&pencil).unwrap();
        // The fixed band misclassifies...
        let strict = classify_modes(&lead, &pencil, &pairs);
        assert_eq!(strict.propagating_counts(), (0, 0), "premise: η pushed λ off the circle");
        // ...the η-aware one recovers both directions with sane velocities.
        let modes = classify_modes_eta(&lead, &pencil, &pairs, eta);
        assert_eq!(modes.propagating_counts(), (1, 1));
        let vr = modes.right_going[0].velocity;
        let k = (0.3f64 / 2.0).acos();
        assert!((vr - 2.0 * k.sin()).abs() < 1e-3, "v = {vr}");
        // Genuinely evanescent modes stay evanescent under broadening.
        let pencil_gap = CompanionPencil::at_energy(&lead, 3.0, eta);
        let pairs_gap = dense_modes(&pencil_gap).unwrap();
        let gap = classify_modes_eta(&lead, &pencil_gap, &pairs_gap, eta);
        assert_eq!(gap.propagating_counts(), (0, 0));
    }

    #[test]
    fn two_band_lead_mode_count_matches_bands() {
        // At an energy crossed by exactly one band, one propagating pair.
        let h00 = ZMat::from_diag(&[qtx_linalg::c64(-1.5, 0.0), qtx_linalg::c64(1.5, 0.0)]);
        let h01 = ZMat::from_diag(&[qtx_linalg::c64(0.4, 0.0), qtx_linalg::c64(-0.4, 0.0)]);
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(2), ZMat::zeros(2, 2));
        // Band 1 spans [−2.3, −0.7]; band 2 spans [0.7, 2.3].
        let pencil = CompanionPencil::at_energy(&lead, -1.0, 0.0);
        let pairs = dense_modes(&pencil).unwrap();
        let modes = classify_modes(&lead, &pencil, &pairs);
        assert_eq!(modes.propagating_counts(), (1, 1));
        // In the gap: nothing propagates.
        let pencil_gap = CompanionPencil::at_energy(&lead, 0.0, 0.0);
        let pairs_gap = dense_modes(&pencil_gap).unwrap();
        let modes_gap = classify_modes(&lead, &pencil_gap, &pairs_gap);
        assert_eq!(modes_gap.propagating_counts(), (0, 0));
    }
}
