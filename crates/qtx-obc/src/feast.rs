//! FEAST contour-integration eigensolver on an annulus (Fig. 5, Eq. 10).
//!
//! Only the `m` eigenvalues inside an annulus around `|λ| = 1` matter for
//! the boundary conditions: propagating modes sit on the unit circle and
//! slowly decaying evanescent modes just off it, while fast-decaying modes
//! (`|λ| < 1/R` or `|λ| > R`) contribute negligibly (§3.A). The spectral
//! projector onto that annulus is the contour integral
//!
//! ```text
//! Q_F = (1/2πi) [ ∮_{|z|=R} − ∮_{|z|=1/R} ] (z·B − A)⁻¹·B · Y_F  dz
//!     ≈ Σ_p  (z_p / N_p) (z_p·B − A)⁻¹·B·Y_F            (trapezoid rule)
//! ```
//!
//! exactly Eq. 10. Each integration point costs one LU of the `nf`-sized
//! polynomial `P(z_p)` (the paper's block-LU size reduction) and the
//! points are independent — the parallelism the paper exploits across
//! CPU cores — so the factorizations run under rayon here. Rayleigh–Ritz
//! on the orthonormalized subspace (Eq. 7) plus residual-driven subspace
//! iteration refine the eigenpairs.

use crate::companion::CompanionPencil;
use crate::error::{ObcError, ObcOutcome};
use qtx_linalg::{
    eig_generalized_ws, eig_ws, gemm_view, orthonormalize_ws, zherk, Complex64, Op, Workspace, ZMat,
};
use rayon::prelude::*;

/// Orthonormalizes the contour projector output with rank truncation.
///
/// The annulus projector is a low-rank operator (its rank is the number of
/// enclosed eigenvalues), so `P·Y` with a generous random `Y` is strongly
/// rank-deficient; a plain QR would manufacture junk directions out of
/// roundoff and flood the Rayleigh–Ritz step with spurious Ritz values.
/// Diagonalizing the Gram matrix `(P·Y)ᴴ(P·Y)` and dropping directions
/// below `rel_tol·λ_max` keeps exactly the numerically meaningful
/// subspace. Every temporary — the Gram matrix, the eigenvector basis,
/// the cleaned `Q` itself — cycles through the caller's pool.
fn orthonormalize_rank(p: &ZMat, rel_tol: f64, ws: &Workspace) -> ObcOutcome<ZMat> {
    let m = p.cols();
    let mut g = ws.take(m, m);
    // Gram matrix through the Hermitian rank-k update: half the flops of
    // the general product, Hermitian by construction (no symmetrization).
    zherk(1.0, p.view(), Op::Adjoint, 0.0, &mut g);
    let dec = match eig_ws(&g, ws) {
        Ok(dec) => {
            ws.recycle(g);
            dec
        }
        Err(e) => {
            ws.recycle(g);
            return Err(e.into());
        }
    };
    let lmax = dec.values.iter().map(|v| v.re).fold(0.0, f64::max);
    if lmax <= 0.0 {
        ws.recycle(dec.vectors);
        return Ok(ZMat::zeros(p.rows(), 0));
    }
    let keep: Vec<usize> = (0..m).filter(|&j| dec.values[j].re > rel_tol * lmax).collect();
    let mut v = ws.take(m, keep.len());
    for (jj, &j) in keep.iter().enumerate() {
        let scale = 1.0 / dec.values[j].re.sqrt();
        for i in 0..m {
            v[(i, jj)] = dec.vectors[(i, j)].scale(scale);
        }
    }
    ws.recycle(dec.vectors);
    // One QR pass cleans residual non-orthogonality (blocked compact-WY
    // QR over the same pool).
    let pv = ws.matmul(p, &v);
    ws.recycle(v);
    let q = orthonormalize_ws(&pv, ws);
    ws.recycle(pv);
    Ok(q)
}

/// FEAST configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeastConfig {
    /// Trapezoid integration points per circle (`N_p` in Eq. 10).
    pub np: usize,
    /// Outer annulus radius `R` (inner radius is `1/R`).
    pub r_outer: f64,
    /// Subspace size `m0`; 0 selects `nf + 8` automatically.
    pub subspace: usize,
    /// Maximum subspace-iteration refinements.
    pub max_refine: usize,
    /// Relative eigenpair residual tolerance.
    pub tol: f64,
}

impl Default for FeastConfig {
    fn default() -> Self {
        // R = 16 keeps the slowly decaying DFT-basis mode clusters inside
        // the annulus; the residual truncation error on transmission is
        // ~1e-4 (the paper's "contribution from fast decaying modes is
        // negligible" approximation, tunable through `r_outer`).
        FeastConfig { np: 12, r_outer: 16.0, subspace: 0, max_refine: 8, tol: 1e-8 }
    }
}

/// Counters reported by a FEAST run (feeds the Fig. 8 cost accounting).
#[derive(Debug, Clone, Default)]
pub struct FeastStats {
    /// Subspace iterations executed.
    pub iterations: usize,
    /// Eigenpairs found inside the annulus.
    pub m_found: usize,
    /// Linear systems solved (factorizations × refinements).
    pub linear_solves: usize,
    /// Worst accepted eigenpair residual.
    pub max_residual: f64,
}

/// FEAST output: `(λ, u)` pairs with `u` the quadratic eigenvector
/// (bottom block of the companion vector).
pub type FeastModes = Vec<(Complex64, Vec<Complex64>)>;

/// Runs FEAST on the annulus `1/R ≤ |λ| ≤ R` of the companion pencil.
/// Returns `(λ, u)` pairs (`u` = quadratic eigenvector, bottom block) and
/// run statistics.
pub fn feast_annulus(
    pencil: &CompanionPencil,
    cfg: FeastConfig,
) -> ObcOutcome<(FeastModes, FeastStats)> {
    feast_annulus_ws(pencil, cfg, &Workspace::new())
}

/// [`feast_annulus`] over a caller-supplied buffer pool: subspaces,
/// quadrature solves, Rayleigh–Ritz reductions, the QR orthonormalization
/// and the dense eigensolver all recycle through `ws`, so a warm OBC
/// sweep (one call per energy point against a shared pool) performs zero
/// fresh matrix allocations — property-tested in the top-level suite.
pub fn feast_annulus_ws(
    pencil: &CompanionPencil,
    cfg: FeastConfig,
    ws: &Workspace,
) -> ObcOutcome<(FeastModes, FeastStats)> {
    let mut stats = FeastStats::default();
    // Integration nodes: offset half-steps avoid band-edge eigenvalues at
    // λ = ±1 landing exactly on a node.
    let nodes: Vec<(Complex64, f64)> = (0..cfg.np)
        .flat_map(|p| {
            let theta = 2.0 * std::f64::consts::PI * (p as f64 + 0.5) / cfg.np as f64;
            [
                (Complex64::from_polar(cfg.r_outer, theta), 1.0),
                (Complex64::from_polar(1.0 / cfg.r_outer, theta), -1.0),
            ]
        })
        .collect();
    // One LU of P(z_p) per node, reused across refinements and RHS; the
    // polynomial evaluations cycle through the shared pool and the factors
    // adopt their buffers (handed back when the run returns).
    let factors = nodes
        .par_iter()
        .map(|(z, _)| pencil.factor_poly_ws(*z, ws))
        .collect::<qtx_linalg::Result<Vec<_>>>()
        .map_err(ObcError::from);
    let result = factors.and_then(|factors| {
        let r = feast_core(pencil, cfg, &nodes, &factors, ws, &mut stats);
        for f in factors {
            f.recycle_into(ws);
        }
        r
    });
    match result {
        Ok(modes) => Ok((modes, stats)),
        // Carry the run's cost and residual diagnostics out with the
        // failure: the escalation ladder keys off them.
        Err(source) => Err(ObcError::Feast {
            iterations: stats.iterations,
            linear_solves: stats.linear_solves,
            max_residual: stats.max_residual,
            source: Box::new(source),
        }),
    }
}

/// The refinement loop of [`feast_annulus_ws`], separated so the node
/// factorizations can be recycled on every exit path.
fn feast_core(
    pencil: &CompanionPencil,
    cfg: FeastConfig,
    nodes: &[(Complex64, f64)],
    factors: &[qtx_linalg::LuFactors],
    ws: &Workspace,
    stats: &mut FeastStats,
) -> ObcOutcome<FeastModes> {
    let nf = pencil.nf;
    let nbc = 2 * nf;
    let mut m0 = if cfg.subspace == 0 { (nf + 8).min(nbc) } else { cfg.subspace.min(nbc) };
    let mut y = ws.take_scratch(nbc, m0);
    y.randomize(0x0f_ea_57);
    for _attempt in 0..3 {
        let mut accepted: Vec<(Complex64, Vec<Complex64>)> = Vec::new();
        let mut prev_accepted = usize::MAX;
        let mut saturated = false;
        for it in 0..cfg.max_refine {
            stats.iterations += 1;
            // Q = Σ_p w_p (z_p/N_p)(z_p B − A)⁻¹ B Y  (Eq. 10).
            let by = pencil.apply_b_ws(&y, ws);
            let partials: Vec<ZMat> = nodes
                .par_iter()
                .zip(factors)
                .map(|(&(z, w), f)| {
                    let mut x = pencil.solve_shifted_ws(f, z, &by, ws);
                    x.scale_assign(z.scale(w / cfg.np as f64));
                    x
                })
                .collect();
            stats.linear_solves += nodes.len();
            let mut p_acc = ws.take(nbc, y.cols());
            for p in partials {
                p_acc.axpy(Complex64::ONE, &p);
                ws.recycle(p);
            }
            ws.recycle(by);
            let q = match orthonormalize_rank(&p_acc, 1e-13, ws) {
                Ok(q) => q,
                Err(e) => {
                    // Keep the pool's steady state across transiently
                    // failing energy points: recycle everything live.
                    ws.recycle(p_acc);
                    ws.recycle(y);
                    return Err(e);
                }
            };
            ws.recycle(p_acc);
            let k = q.cols();
            if k == 0 {
                ws.recycle(q);
                break; // empty annulus
            }
            // Reduced pencil (Eq. 7): [QᴴAQ]·y = λ·[QᴴBQ]·y, assembled
            // blockwise from the companion structure instead of through
            // materialized A·Q/B·Q products: with Q = [Q₁; Q₂],
            //   QᴴAQ = −Q₁ᴴ·(T00·Q₁ + T10·Q₂) + Q₂ᴴ·Q₁
            //   QᴴBQ =  Q₁ᴴ·(T01·Q₁) + Q₂ᴴ·Q₂
            // so every inner dimension is nf (not 2·nf), the 2nf-tall
            // temporaries are gone, and the Hermitian Q₂ᴴQ₂ term of the
            // B-projection runs on the half-flop rank-k update.
            let nf = pencil.nf;
            let q1 = q.block_view(0, 0, nf, k);
            let q2 = q.block_view(nf, 0, nf, k);
            let mut tq = ws.take_scratch(nf, k);
            gemm_view(
                Complex64::ONE,
                pencil.t00.view(),
                Op::None,
                q1,
                Op::None,
                Complex64::ZERO,
                &mut tq,
            );
            gemm_view(
                Complex64::ONE,
                pencil.t10.view(),
                Op::None,
                q2,
                Op::None,
                Complex64::ONE,
                &mut tq,
            );
            let mut ar = ws.take_scratch(k, k);
            gemm_view(
                -Complex64::ONE,
                q1,
                Op::Adjoint,
                tq.view(),
                Op::None,
                Complex64::ZERO,
                &mut ar,
            );
            gemm_view(Complex64::ONE, q2, Op::Adjoint, q1, Op::None, Complex64::ONE, &mut ar);
            let mut br = ws.take(k, k);
            zherk(1.0, q2, Op::Adjoint, 0.0, &mut br);
            gemm_view(
                Complex64::ONE,
                pencil.t01.view(),
                Op::None,
                q1,
                Op::None,
                Complex64::ZERO,
                &mut tq,
            );
            gemm_view(
                Complex64::ONE,
                q1,
                Op::Adjoint,
                tq.view(),
                Op::None,
                Complex64::ONE,
                &mut br,
            );
            ws.recycle(tq);
            let ritz = match eig_generalized_ws(&ar, &br, ws) {
                Ok(ritz) => ritz,
                Err(e) => {
                    for m in [ar, br, q, y] {
                        ws.recycle(m);
                    }
                    return Err(e.into());
                }
            };
            ws.recycle(ar);
            ws.recycle(br);
            // Lift Ritz vectors, classify, and measure residuals.
            let x = ws.matmul(&q, &ritz.vectors);
            ws.recycle(q);
            ws.recycle(ritz.vectors);
            accepted.clear();
            let mut max_res: f64 = 0.0;
            let mut inside = 0usize;
            let lo = 1.0 / cfg.r_outer * 0.999;
            let hi = cfg.r_outer * 1.001;
            for (j, &lam) in ritz.values.iter().enumerate() {
                if !lam.is_finite() {
                    continue;
                }
                let mag = lam.abs();
                if mag < lo || mag > hi {
                    continue;
                }
                inside += 1;
                let mut u: Vec<Complex64> = (nf..nbc).map(|i| x[(i, j)]).collect();
                let norm = u.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
                if norm < 1e-12 {
                    continue;
                }
                for z in u.iter_mut() {
                    *z = *z / norm;
                }
                let res = pencil.residual(lam, &u);
                if res < cfg.tol {
                    accepted.push((lam, u));
                    max_res = max_res.max(res);
                }
            }
            stats.max_residual = max_res;
            // Subspace saturation: annulus may hold more modes than m0.
            if k + 2 >= m0 && m0 < nbc {
                saturated = true;
                ws.recycle(x);
                break;
            }
            if inside > 0 && accepted.len() == inside {
                stats.m_found = accepted.len();
                ws.recycle(x);
                ws.recycle(y);
                return Ok(accepted);
            }
            // Stabilized acceptance: if the converged count repeats across
            // two refinements, the stragglers are quadrature leakage from
            // outside the annulus, not missing modes.
            if it >= 1 && !accepted.is_empty() && accepted.len() == prev_accepted {
                stats.m_found = accepted.len();
                ws.recycle(x);
                ws.recycle(y);
                return Ok(accepted);
            }
            prev_accepted = accepted.len();
            if it + 1 < cfg.max_refine {
                // Subspace iteration: feed the Ritz vectors back, letting
                // the pool reclaim the previous subspace.
                ws.recycle(std::mem::replace(&mut y, x));
            } else {
                ws.recycle(x);
            }
        }
        if saturated {
            m0 = (m0 * 2).min(nbc);
            ws.recycle(y);
            y = ws.take_scratch(nbc, m0);
            y.randomize(0x0f_ea_58);
            continue;
        }
        // Not fully converged: return what passed the residual filter.
        if !accepted.is_empty() {
            stats.m_found = accepted.len();
            ws.recycle(y);
            return Ok(accepted);
        }
        break;
    }
    ws.recycle(y);
    // Either the annulus is empty (legitimate deep in a gap with only
    // fast-decaying modes) or FEAST failed outright; distinguish by one
    // last check with the dense baseline on small pencils.
    stats.m_found = 0;
    if pencil.nbc() <= 64 {
        let all = crate::baselines::dense_modes(pencil)?;
        let lo = 1.0 / cfg.r_outer;
        let hi = cfg.r_outer;
        if all.iter().any(|(l, _)| (lo..=hi).contains(&l.abs())) {
            return Err(ObcError::NoModes { method: "feast" });
        }
    }
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::dense_modes;
    use crate::lead::LeadBlocks;
    use qtx_linalg::c64;

    fn sorted_mags(v: &[(Complex64, Vec<Complex64>)], lo: f64, hi: f64) -> Vec<f64> {
        let mut m: Vec<f64> =
            v.iter().map(|(z, _)| z.abs()).filter(|m| (lo..=hi).contains(m)).collect();
        m.sort_by(|a, b| a.partial_cmp(b).unwrap());
        m
    }

    #[test]
    fn feast_finds_chain_modes_in_band() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, 0.4, 0.0);
        let (modes, stats) = feast_annulus(&pencil, FeastConfig::default()).unwrap();
        assert_eq!(modes.len(), 2, "both unit-circle roots");
        assert!(stats.m_found == 2);
        for (lam, u) in &modes {
            assert!((lam.abs() - 1.0).abs() < 1e-7);
            assert!(pencil.residual(*lam, u) < 1e-8);
        }
    }

    #[test]
    fn feast_matches_dense_annulus_spectrum() {
        let mut h00 = ZMat::random(4, 4, 41);
        h00.hermitianize();
        let h01 = ZMat::random(4, 4, 42).scaled(c64(0.45, 0.0));
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(4), ZMat::zeros(4, 4));
        let pencil = CompanionPencil::at_energy(&lead, 0.15, 0.0);
        let cfg = FeastConfig { np: 12, r_outer: 3.0, ..FeastConfig::default() };
        let (feast_modes, _) = feast_annulus(&pencil, cfg).unwrap();
        let dense = dense_modes(&pencil).unwrap();
        // Use a slightly shrunk window so boundary-straddling eigenvalues
        // don't flip membership between the two methods.
        let (lo, hi) = (1.0 / 2.9, 2.9);
        let f = sorted_mags(&feast_modes, lo, hi);
        let d = sorted_mags(&dense, lo, hi);
        assert_eq!(f.len(), d.len(), "feast {f:?} vs dense {d:?}");
        for (a, b) in f.iter().zip(&d) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn feast_ignores_fast_decaying_modes() {
        // Far outside the band every mode decays fast: the annulus with a
        // modest R sees nothing, and that is the expected behaviour.
        let lead = LeadBlocks::chain_1d(0.0, -0.2);
        let pencil = CompanionPencil::at_energy(&lead, 3.0, 0.0);
        // λ + 1/λ = E/t = −15 ⇒ |λ| ≈ 15 ≫ R.
        let cfg = FeastConfig { r_outer: 3.0, ..FeastConfig::default() };
        let (modes, _) = feast_annulus(&pencil, cfg).unwrap();
        assert!(modes.is_empty());
    }

    #[test]
    fn feast_counts_linear_solves() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let pencil = CompanionPencil::at_energy(&lead, -0.9, 0.0);
        let cfg = FeastConfig { np: 6, ..FeastConfig::default() };
        let (_, stats) = feast_annulus(&pencil, cfg).unwrap();
        assert!(stats.linear_solves >= 12, "2 circles × np solves at least");
        assert!(stats.iterations >= 1);
    }

    #[test]
    fn feast_on_gapped_two_band_lead() {
        let h00 = ZMat::from_diag(&[c64(-1.5, 0.0), c64(1.5, 0.0)]);
        let h01 = ZMat::from_diag(&[c64(0.35, 0.0), c64(-0.35, 0.0)]);
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(2), ZMat::zeros(2, 2));
        // Mid-gap: only evanescent pairs, still inside a generous annulus.
        let pencil = CompanionPencil::at_energy(&lead, 0.0, 0.0);
        let cfg = FeastConfig { r_outer: 8.0, np: 16, ..FeastConfig::default() };
        let (modes, _) = feast_annulus(&pencil, cfg).unwrap();
        assert!(!modes.is_empty(), "slow evanescent modes live in the annulus");
        for (lam, _) in &modes {
            assert!((lam.abs() - 1.0).abs() > 1e-3, "gap has no propagating modes");
        }
        // Reciprocal pairing λ ↔ 1/λ̄ of a Hermitian pencil.
        for (lam, _) in &modes {
            let partner = lam.conj().inv();
            assert!(
                modes.iter().any(|(l2, _)| (*l2 - partner).abs() < 1e-6),
                "missing reciprocal partner of {lam}"
            );
        }
    }
}
