//! Typed OBC failure taxonomy.
//!
//! Boundary-condition failures are the dominant failure mode of a long
//! energy sweep — FEAST stalls when modes straddle the contour, Beyn's
//! single-shot moments go rank-deficient near band edges, Sancho–Rubio
//! decimation refuses to converge at in-band energies without broadening.
//! The escalation ladder in `qtx-core` decides *how to retry* based on
//! *what failed*, so every variant here carries the convergence
//! diagnostics of the algorithm that gave up: iteration counts, residuals,
//! ranks, and the underlying linear-algebra cause when there is one.

use qtx_linalg::LinalgError;

/// What went wrong while building lead modes or self-energies.
#[derive(Debug, Clone, PartialEq)]
pub enum ObcError {
    /// FEAST gave up after `iterations` subspace refinements and
    /// `linear_solves` quadrature solves; `max_residual` is the worst
    /// eigenpair residual it last accepted (0 when nothing converged).
    Feast { iterations: usize, linear_solves: usize, max_residual: f64, source: Box<ObcError> },
    /// Beyn's single-shot moments failed with `probes` probe columns and
    /// a revealed moment rank of `rank` (0 when the failure predates the
    /// rank-revealing step).
    Beyn { probes: usize, rank: usize, source: Box<ObcError> },
    /// Sancho–Rubio decimation exhausted `iterations` without the
    /// couplings decaying below tolerance; `defect` is the relative
    /// coupling norm still standing.
    SanchoRubio { iterations: usize, defect: f64 },
    /// The dense shift-and-invert route failed.
    ShiftInvert { source: Box<ObcError> },
    /// An eigensolver ran to completion but produced no usable modes
    /// where modes were required.
    NoModes { method: &'static str },
    /// A finished OBC output (`Σ`, injection, ...) contained `count`
    /// NaN/Inf entries.
    NonFinite { what: &'static str, count: usize },
    /// Underlying dense linear-algebra failure (factorization pivots,
    /// eigen-iteration stalls, injected faults).
    Linalg(LinalgError),
}

impl ObcError {
    /// True when the root cause is a deterministic injected fault (the
    /// ladder treats those exactly like organic failures; tests use this
    /// to separate the two).
    pub fn is_injected(&self) -> bool {
        match self {
            ObcError::Feast { source, .. }
            | ObcError::Beyn { source, .. }
            | ObcError::ShiftInvert { source } => source.is_injected(),
            ObcError::Linalg(e) => e.is_injected(),
            _ => false,
        }
    }

    /// Innermost linear-algebra cause, if the failure has one.
    pub fn root_linalg(&self) -> Option<&LinalgError> {
        match self {
            ObcError::Feast { source, .. }
            | ObcError::Beyn { source, .. }
            | ObcError::ShiftInvert { source } => source.root_linalg(),
            ObcError::Linalg(e) => Some(e.root()),
            _ => None,
        }
    }
}

impl From<LinalgError> for ObcError {
    fn from(e: LinalgError) -> Self {
        ObcError::Linalg(e)
    }
}

impl std::fmt::Display for ObcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObcError::Feast { iterations, linear_solves, max_residual, source } => write!(
                f,
                "FEAST failed after {iterations} refinements / {linear_solves} solves \
                 (last residual {max_residual:.3e}): {source}"
            ),
            ObcError::Beyn { probes, rank, source } => {
                write!(f, "Beyn failed ({probes} probes, moment rank {rank}): {source}")
            }
            ObcError::SanchoRubio { iterations, defect } => write!(
                f,
                "Sancho-Rubio decimation did not converge in {iterations} iterations \
                 (coupling defect {defect:.3e})"
            ),
            ObcError::ShiftInvert { source } => write!(f, "shift-invert route failed: {source}"),
            ObcError::NoModes { method } => {
                write!(f, "{method} produced no usable modes")
            }
            ObcError::NonFinite { what, count } => {
                write!(f, "OBC output {what} has {count} non-finite entries")
            }
            ObcError::Linalg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ObcError {}

/// Result alias for OBC computations.
pub type ObcOutcome<T> = std::result::Result<T, ObcError>;
