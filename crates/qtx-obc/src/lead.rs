//! Folded lead blocks.
//!
//! After grouping `NBW` unit cells into one superblock of size
//! `nf = NBW · n`, the semi-infinite lead is nearest-neighbour at the
//! superblock level: on-site `H00/S00` and coupling `H01/S01` blocks fully
//! describe it. All OBC algorithms work on the energy-shifted blocks
//! `T = E·S − H`.

use qtx_linalg::{c64, ZMat};
use serde::{Deserialize, Serialize};

/// Folded nearest-neighbour lead description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeadBlocks {
    /// On-site superblock Hamiltonian (`nf × nf`, Hermitian).
    pub h00: ZMat,
    /// Coupling to the next superblock along +x.
    pub h01: ZMat,
    /// On-site overlap.
    pub s00: ZMat,
    /// Coupling overlap.
    pub s01: ZMat,
}

impl LeadBlocks {
    /// Builds from explicit blocks (validated).
    pub fn new(h00: ZMat, h01: ZMat, s00: ZMat, s01: ZMat) -> Self {
        let nf = h00.rows();
        assert!(h00.is_square() && h01.is_square() && s00.is_square() && s01.is_square());
        assert_eq!(h01.rows(), nf);
        assert_eq!(s00.rows(), nf);
        assert_eq!(s01.rows(), nf);
        assert!(h00.hermitian_defect() < 1e-8 * h00.norm_max().max(1.0), "H00 must be Hermitian");
        LeadBlocks { h00, h01, s00, s01 }
    }

    /// A 1-D single-orbital chain with on-site `eps` and hopping `t`
    /// (orthogonal basis): the analytic reference of every OBC test.
    pub fn chain_1d(eps: f64, t: f64) -> Self {
        LeadBlocks {
            h00: ZMat::from_diag(&[c64(eps, 0.0)]),
            h01: ZMat::from_diag(&[c64(t, 0.0)]),
            s00: ZMat::identity(1),
            s01: ZMat::zeros(1, 1),
        }
    }

    /// Superblock dimension `nf`.
    pub fn nf(&self) -> usize {
        self.h00.rows()
    }

    /// Stable content address of the lead: FNV-1a over the block
    /// dimensions and the exact f64 bit patterns of all four blocks.
    /// Two leads hash equal iff they are bit-identical, so the hash is a
    /// sound cache key for anything that is a pure function of the lead
    /// (self-energies, mode sets). Not a cryptographic digest — collisions
    /// are astronomically unlikely but not adversarially hard.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bits: u64| {
            for b in bits.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for m in [&self.h00, &self.h01, &self.s00, &self.s01] {
            eat(m.rows() as u64);
            eat(m.cols() as u64);
            for z in m.as_slice() {
                eat(z.re.to_bits());
                eat(z.im.to_bits());
            }
        }
        h
    }

    /// Energy-shifted blocks `(T00, T01, T10) = (E·S − H)` at energy `e`
    /// with broadening `eta` (retarded: `E + iη`).
    pub fn t_blocks(&self, e: f64, eta: f64) -> (ZMat, ZMat, ZMat) {
        let z = c64(e, eta);
        let t00 = &self.s00.scaled(z) - &self.h00;
        let t01 = &self.s01.scaled(z) - &self.h01;
        // T10 = E·S01ᴴ − H01ᴴ (Hermitian lead ⇒ S10 = S01ᴴ, H10 = H01ᴴ);
        // with a complex shift this is (z·S01 − H01) conjugate-transposed
        // entrywise in S/H but the shift stays z (retarded convention).
        let t10 = &self.s01.adjoint().scaled(z) - &self.h01.adjoint();
        (t00, t01, t10)
    }

    /// Band structure sample: eigenvalues of
    /// `H(k) = H00 + H01·e^{ik} + H01ᴴ·e^{−ik}` against
    /// `S(k)` — used to place energy grids and to locate band edges.
    pub fn bands_at(&self, k: f64) -> Vec<f64> {
        let phase = qtx_linalg::Complex64::from_phase(k);
        let hk = {
            let mut m = self.h00.clone();
            m.axpy(phase, &self.h01);
            m.axpy(phase.conj(), &self.h01.adjoint());
            m
        };
        let sk = {
            let mut m = self.s00.clone();
            m.axpy(phase, &self.s01);
            m.axpy(phase.conj(), &self.s01.adjoint());
            m
        };
        let dec = qtx_linalg::eig_generalized(&hk, &sk).expect("band eigensolve");
        let mut bands: Vec<f64> = dec.values.iter().map(|z| z.re).collect();
        bands.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bands
    }

    /// First dispersive band energy above `lo` at momentum `k`: bands are
    /// matched between `k` and `k + dk` by sorted index and kept only when
    /// the local slope exceeds `min_slope` (eV per unit phase). Flat
    /// (surface/passivation) bands carry no current and are skipped.
    pub fn dispersive_energy(&self, k: f64, lo: f64, min_slope: f64) -> Option<f64> {
        let dk = 0.08;
        let b0 = self.bands_at(k);
        let b1 = self.bands_at(k + dk);
        b0.iter()
            .zip(&b1)
            .filter(|(e0, e1)| (**e1 - **e0).abs() / dk > min_slope)
            .map(|(e0, _)| *e0)
            .find(|&e| e > lo)
    }

    /// Minimum energy of any dispersive band above `lo` over a k-scan —
    /// the conducting band edge (ignores flat passivation bands).
    pub fn dispersive_band_min(&self, lo: f64, min_slope: f64) -> Option<f64> {
        let nk = 24;
        let mut best: Option<f64> = None;
        for i in 0..nk {
            let k = 0.05 + (std::f64::consts::PI - 0.1) * i as f64 / (nk - 1) as f64;
            if let Some(e) = self.dispersive_energy(k, lo, min_slope) {
                best = Some(best.map_or(e, |b: f64| b.min(e)));
            }
        }
        best
    }

    /// Scans the Brillouin zone and returns `(E_min, E_max)` over all
    /// bands — the energy window that brackets every propagating mode.
    pub fn band_window(&self, nk: usize) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..nk {
            let k = std::f64::consts::PI * i as f64 / (nk.max(2) - 1) as f64;
            for b in self.bands_at(k) {
                lo = lo.min(b);
                hi = hi.max(b);
            }
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dispersion_is_cosine() {
        // E(k) = eps + 2 t cos k for the 1-D chain.
        let lead = LeadBlocks::chain_1d(0.5, -1.0);
        for &k in &[0.0, 0.7, 1.5, std::f64::consts::PI] {
            let bands = lead.bands_at(k);
            assert_eq!(bands.len(), 1);
            let expected = 0.5 - 2.0 * k.cos();
            assert!((bands[0] - expected).abs() < 1e-10, "k={k}: {} vs {expected}", bands[0]);
        }
    }

    #[test]
    fn band_window_of_chain() {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        let (lo, hi) = lead.band_window(64);
        assert!((lo + 2.0).abs() < 1e-6);
        assert!((hi - 2.0).abs() < 1e-6);
    }

    #[test]
    fn t_blocks_shift() {
        let lead = LeadBlocks::chain_1d(1.0, -0.5);
        let (t00, t01, t10) = lead.t_blocks(2.0, 0.0);
        assert!((t00[(0, 0)] - c64(1.0, 0.0)).abs() < 1e-14); // 2·1 − 1
        assert!((t01[(0, 0)] - c64(0.5, 0.0)).abs() < 1e-14); // −(−0.5)
        assert!((t10[(0, 0)] - t01[(0, 0)].conj()).abs() < 1e-14);
    }

    #[test]
    fn content_hash_is_stable_and_bit_sensitive() {
        let a = LeadBlocks::chain_1d(0.5, -1.0);
        let b = LeadBlocks::chain_1d(0.5, -1.0);
        assert_eq!(a.content_hash(), b.content_hash(), "identical leads hash equal");
        // A one-ULP perturbation of a single entry must change the address.
        let mut c = LeadBlocks::chain_1d(0.5, -1.0);
        let v = c.h00[(0, 0)];
        c.h00[(0, 0)] = c64(f64::from_bits(v.re.to_bits() + 1), v.im);
        assert_ne!(a.content_hash(), c.content_hash(), "one-bit change must rekey");
        // Different dimensions never collide with the tiny chain by shape.
        let two = LeadBlocks::new(
            ZMat::identity(2),
            ZMat::zeros(2, 2),
            ZMat::identity(2),
            ZMat::zeros(2, 2),
        );
        assert_ne!(a.content_hash(), two.content_hash());
    }

    #[test]
    fn two_band_lead_has_gap() {
        // Two decoupled orbitals at ±1.5 with weak hopping: gap around 0.
        let h00 = ZMat::from_diag(&[c64(-1.5, 0.0), c64(1.5, 0.0)]);
        let h01 = ZMat::from_diag(&[c64(0.3, 0.0), c64(-0.3, 0.0)]);
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(2), ZMat::zeros(2, 2));
        let (lo, hi) = lead.band_window(32);
        assert!(lo < -1.0 && hi > 1.0);
        // No band touches zero.
        for i in 0..32 {
            let k = std::f64::consts::PI * i as f64 / 31.0;
            for b in lead.bands_at(k) {
                assert!(b.abs() > 0.5, "gap state at k={k}: E={b}");
            }
        }
    }
}
