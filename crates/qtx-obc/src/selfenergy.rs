//! Boundary self-energies `Σ^RB` and injection vectors `Inj` (Eq. 5).
//!
//! With the retarded mode sets of a lead, the Bloch propagator of the
//! outgoing subspace is `F = U·Λ·U⁺` (pseudo-inverse because FEAST only
//! returns the annulus modes — the fast-decaying remainder is negligible,
//! §3.A). The scattered wave in the left lead obeys `ψ_{q−1} = F_L⁻¹·ψ_q`,
//! which folds the semi-infinite lead into
//!
//! ```text
//! Σ_L = −T10·U_L·Λ_L⁻¹·U_L⁺          (added to the first diagonal block)
//! Σ_R = −T01·U_R·Λ_R·U_R⁺            (added to the last diagonal block)
//! ```
//!
//! and an incoming propagating mode `(λ_i, u_i)` injects
//!
//! ```text
//! Inj_i^L = −T10·λ_i⁻¹·u_i − Σ_L·u_i     (top block rows only)
//! Inj_i^R = −T01·λ_i·u_i   − Σ_R·u_i     (bottom block rows only)
//! ```
//!
//! reproducing the sparse right-hand-side structure of Fig. 4. The NEGF
//! identity `Σ_L = T10·g_L·T01` with the decimated surface Green's
//! function `g_L` provides an independent cross-check (tests below).

use crate::baselines::{sancho_rubio, shift_invert_modes};
use crate::beyn::beyn_annulus;
use crate::companion::CompanionPencil;
use crate::error::{ObcError, ObcOutcome};
use crate::feast::{feast_annulus, FeastStats};
use crate::lead::LeadBlocks;
use crate::modes::{classify_modes_eta, LeadModes, ModeSet};
use crate::ObcMethod;
use qtx_linalg::{c64, fault, qr_factor_ws, Complex64, LinalgError, Workspace, ZMat};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which contact the self-energy belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Lead occupying `q ≤ −1` (electrons enter moving towards +x).
    Left,
    /// Lead occupying `q ≥ nb` (electrons enter moving towards −x).
    Right,
}

/// Imaginary broadening `η` of a retarded evaluation at `E + iη`.
///
/// A dedicated newtype (instead of a bare `f64` trailing parameter) so
/// that [`self_energy`]'s one merged signature reads unambiguously at the
/// call site: `self_energy(&lead, e, Eta::ZERO, Side::Left, method)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Eta(pub f64);

impl Eta {
    /// No broadening — the exact-energy production evaluation.
    pub const ZERO: Eta = Eta(0.0);
}

impl From<f64> for Eta {
    fn from(v: f64) -> Eta {
        Eta(v)
    }
}

/// Process-wide count of *actual* self-energy builds performed by
/// [`self_energy`] (any method: FEAST, Beyn, shift-invert, Sancho–Rubio).
/// Fault-injected calls that never reach the solve are not counted.
/// Cache layers assert against deltas of this counter to prove a warm
/// sweep performed zero OBC solves.
static OBC_SOLVES: AtomicU64 = AtomicU64::new(0);

/// Total self-energy solves performed by this process.
pub fn obc_solves_total() -> u64 {
    OBC_SOLVES.load(Ordering::Relaxed)
}

/// Self-energy + injection data for one contact at one energy.
#[derive(Debug, Clone)]
pub struct ObcResult {
    /// Boundary self-energy block (`nf × nf`).
    pub sigma: ZMat,
    /// Injection columns, one per incoming propagating mode (flux
    /// normalized); rows span the contact block.
    pub injection: ZMat,
    /// The incoming propagating modes pairing with `injection` columns.
    pub inc_modes: Vec<ModeSet>,
    /// The outgoing mode set used to build `Σ` (needed to project
    /// transmitted amplitudes).
    pub out_modes: Vec<ModeSet>,
    /// FEAST statistics when that method ran.
    pub stats: Option<FeastStats>,
}

/// Builds the Bloch propagator piece `U·diag(λ^pow)·U⁺` for a mode set,
/// every temporary — the mode blocks, the QR factors of `U` and the
/// pseudo-inverse solve — borrowed from `ws` (the returned product is
/// pool-backed too; recycle it when spent).
fn bloch_product(modes: &[ModeSet], nf: usize, pow: i32, ws: &Workspace) -> ZMat {
    if modes.is_empty() {
        return ws.take(nf, nf);
    }
    let m = modes.len();
    let mut u = ws.take_scratch(nf, m);
    let mut ul = ws.take_scratch(nf, m);
    for (j, mode) in modes.iter().enumerate() {
        let lp = mode.lambda.powi(pow);
        for i in 0..nf {
            u[(i, j)] = mode.u[i];
            ul[(i, j)] = mode.u[i] * lp;
        }
    }
    // U⁺ = least-squares solve U·W = I (annulus-truncated pseudo-inverse)
    // through the blocked compact-WY QR over the same pool.
    let f = qr_factor_ws(&u, ws);
    let mut eye = ws.take(nf, nf);
    for i in 0..nf {
        eye[(i, i)] = Complex64::ONE;
    }
    let mut u_pinv = ws.take_scratch(m, nf);
    f.least_squares_into(eye.view(), &mut u_pinv, ws);
    f.recycle_into(ws);
    ws.recycle(eye);
    ws.recycle(u);
    let out = ws.matmul(&ul, &u_pinv);
    ws.recycle(ul);
    ws.recycle(u_pinv);
    out
}

/// Computes lead modes with the requested algorithm (zero broadening).
pub fn lead_modes(
    lead: &LeadBlocks,
    e: f64,
    method: ObcMethod,
) -> ObcOutcome<(LeadModes, Option<FeastStats>)> {
    lead_modes_eta(lead, e, 0.0, method)
}

/// [`lead_modes`] with an explicit broadening: the pencil is built at
/// `E + iη`, which pushes unit-circle eigenvalues off contours and
/// regularizes band-edge degeneracies — the escalation ladder's first
/// retry knob.
pub fn lead_modes_eta(
    lead: &LeadBlocks,
    e: f64,
    eta: f64,
    method: ObcMethod,
) -> ObcOutcome<(LeadModes, Option<FeastStats>)> {
    let pencil = CompanionPencil::at_energy(lead, e, eta);
    let (pairs, stats) = match method {
        ObcMethod::Feast(cfg) => match feast_annulus(&pencil, cfg) {
            Ok((p, s)) => (p, Some(s)),
            // Injected faults must surface — the robustness battery drives
            // the escalation ladder through exactly this path. Organic
            // FEAST stalls (modes straddling the contour at band edges)
            // keep the exact-but-slower dense fallback.
            Err(e) if e.is_injected() => return Err(e),
            Err(_) => (shift_invert_modes(&pencil, c64(0.83, 0.41))?, None),
        },
        ObcMethod::Beyn(cfg) => (beyn_annulus(&pencil, cfg)?, None),
        ObcMethod::ShiftInvert | ObcMethod::Decimation => {
            (shift_invert_modes(&pencil, c64(0.83, 0.41))?, None)
        }
    };
    Ok((classify_modes_eta(lead, &pencil, &pairs, eta), stats))
}

/// Boundary self-energy and injection for one side (mode-based, the
/// FEAST+SplitSolve production path): pencil and coupling blocks are both
/// built at `E + iη`. Pass [`Eta::ZERO`] for the exact-energy evaluation;
/// the escalation ladder passes its per-rung broadening.
pub fn self_energy(
    lead: &LeadBlocks,
    e: f64,
    eta: Eta,
    side: Side,
    method: ObcMethod,
) -> ObcOutcome<ObcResult> {
    let Eta(eta) = eta;
    // Whole-contact injection chokepoint. The key mixes everything an
    // escalation can change — energy, broadening, side, method and its
    // quadrature size — so a plain retry fails identically while any
    // ladder rung gets a fresh draw.
    let (tag, knob) = match method {
        ObcMethod::Feast(c) => (1.0, c.np as f64),
        ObcMethod::Beyn(c) => (2.0, c.np as f64),
        ObcMethod::ShiftInvert => (3.0, 0.0),
        ObcMethod::Decimation => (4.0, 0.0),
    };
    let side_f = match side {
        Side::Left => 0.0,
        Side::Right => 1.0,
    };
    if fault::should_fail("self_energy", fault::key_of(&[e, eta, side_f, tag, knob])) {
        return Err(ObcError::Linalg(LinalgError::Injected { site: "self_energy" }));
    }
    OBC_SOLVES.fetch_add(1, Ordering::Relaxed);
    if let ObcMethod::Decimation = method {
        let sigma = self_energy_decimation(lead, e, eta.max(1e-8), side)?;
        let bad = sigma.non_finite_count();
        if bad > 0 {
            return Err(ObcError::NonFinite { what: "decimation sigma", count: bad });
        }
        let nf = lead.nf();
        return Ok(ObcResult {
            sigma,
            injection: ZMat::zeros(nf, 0),
            inc_modes: Vec::new(),
            out_modes: Vec::new(),
            stats: None,
        });
    }
    let nf = lead.nf();
    let (modes, stats) = lead_modes_eta(lead, e, eta, method)?;
    let (_t00, t01, t10) = lead.t_blocks(e, eta);
    let ws = Workspace::new();
    let (sigma, inc_modes, out_modes, coupling, lam_pow) = match side {
        Side::Left => {
            // Outgoing into the left lead; F_L⁻¹ = U Λ⁻¹ U⁺.
            let g = bloch_product(&modes.left_going, nf, -1, &ws);
            let mut sigma = &t10 * &g;
            ws.recycle(g);
            sigma.scale_assign(-Complex64::ONE);
            let inc: Vec<ModeSet> =
                modes.right_going.iter().filter(|m| m.propagating).cloned().collect();
            (sigma, inc, modes.left_going.clone(), t10.clone(), -1)
        }
        Side::Right => {
            // Outgoing into the right lead; F_R = U Λ U⁺.
            let g = bloch_product(&modes.right_going, nf, 1, &ws);
            let mut sigma = &t01 * &g;
            ws.recycle(g);
            sigma.scale_assign(-Complex64::ONE);
            let inc: Vec<ModeSet> =
                modes.left_going.iter().filter(|m| m.propagating).cloned().collect();
            (sigma, inc, modes.right_going.clone(), t01.clone(), 1)
        }
    };
    // Injection columns: −T·λ^{±1}·u − Σ·u.
    let mut injection = ZMat::zeros(nf, inc_modes.len());
    for (j, mode) in inc_modes.iter().enumerate() {
        let lp = mode.lambda.powi(lam_pow);
        let tu = coupling.matvec(&mode.u);
        let su = sigma.matvec(&mode.u);
        for i in 0..nf {
            injection[(i, j)] = -(tu[i] * lp) - su[i];
        }
    }
    // Non-finite outputs poison every downstream solve silently (the
    // max-norms drop NaN); catch them at the boundary-condition seam.
    let bad = sigma.non_finite_count() + injection.non_finite_count();
    if bad > 0 {
        return Err(ObcError::NonFinite { what: "self-energy", count: bad });
    }
    Ok(ObcResult { sigma, injection, inc_modes, out_modes, stats })
}

/// Forwarder kept for the pre-merge API shape; the broadened and
/// unbroadened entry points are now one function.
#[deprecated(
    since = "0.1.0",
    note = "merged into `self_energy`: pass the broadening as `Eta(eta)` \
            (or `Eta::ZERO` for the exact-energy evaluation)"
)]
pub fn self_energy_eta(
    lead: &LeadBlocks,
    e: f64,
    eta: f64,
    side: Side,
    method: ObcMethod,
) -> ObcOutcome<ObcResult> {
    self_energy(lead, e, Eta(eta), side, method)
}

/// Self-energy through Sancho–Rubio decimation (ref. [40]) — the
/// independent NEGF-era route: `Σ_L = T10·g_L·T01`, `Σ_R = T01·g_R·T10`.
pub fn self_energy_decimation(lead: &LeadBlocks, e: f64, eta: f64, side: Side) -> ObcOutcome<ZMat> {
    let (t00, t01, t10) = lead.t_blocks(e, eta);
    match side {
        Side::Left => {
            // Left lead grows towards −x: swap the coupling roles.
            let g = sancho_rubio(&t00, &t10, &t01, 1e-13, 500)?;
            Ok(&(&t10 * &g) * &t01)
        }
        Side::Right => {
            let g = sancho_rubio(&t00, &t01, &t10, 1e-13, 500)?;
            Ok(&(&t01 * &g) * &t10)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feast::FeastConfig;
    use qtx_linalg::Complex64;

    fn chain() -> LeadBlocks {
        LeadBlocks::chain_1d(0.0, -1.0)
    }

    #[test]
    fn sigma_matches_analytic_chain() {
        // Σ_L = t·e^{ik} with E = 2t·cos k, t = −1 (module docs derivation).
        let e = 0.5;
        let k = (-e / 2.0f64).acos(); // E = −2 cos k
        let expected = c64(-k.cos(), -k.sin()); // t e^{ik} = −e^{ik}... sign check below
        let obc = self_energy(&chain(), e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
        let got = obc.sigma[(0, 0)];
        // Retarded: Im Σ < 0 and |Σ| = |t| = 1.
        assert!(got.im < 0.0, "retarded self-energy, got {got}");
        assert!((got.abs() - 1.0).abs() < 1e-8);
        assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    #[test]
    fn mode_sigma_equals_decimation_sigma() {
        for &e in &[0.3f64, -0.8, 1.4] {
            let modes_sigma =
                self_energy(&chain(), e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert)
                    .unwrap()
                    .sigma;
            let dec_sigma = self_energy_decimation(&chain(), e, 1e-9, Side::Left).unwrap();
            assert!(
                modes_sigma.max_diff(&dec_sigma) < 1e-5,
                "E = {e}: {} vs {}",
                modes_sigma[(0, 0)],
                dec_sigma[(0, 0)]
            );
        }
    }

    #[test]
    fn feast_sigma_equals_shift_invert_sigma() {
        let h00 = ZMat::from_diag(&[c64(-1.5, 0.0), c64(1.5, 0.0)]);
        let h01 = ZMat::from_diag(&[c64(0.4, 0.0), c64(-0.4, 0.0)]);
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(2), ZMat::zeros(2, 2));
        let cfg = FeastConfig { r_outer: 12.0, np: 16, ..FeastConfig::default() };
        for &e in &[-1.2f64, 1.1] {
            let s_feast =
                self_energy(&lead, e, Eta::ZERO, Side::Left, ObcMethod::Feast(cfg)).unwrap();
            let s_si =
                self_energy(&lead, e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
            assert!(
                s_feast.sigma.max_diff(&s_si.sigma) < 1e-5,
                "E = {e}: diff {:.2e}",
                s_feast.sigma.max_diff(&s_si.sigma)
            );
            assert_eq!(s_feast.inc_modes.len(), s_si.inc_modes.len());
        }
    }

    #[test]
    fn right_side_mirrors_left_for_symmetric_lead() {
        let e = 0.7;
        let l = self_energy(&chain(), e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
        let r = self_energy(&chain(), e, Eta::ZERO, Side::Right, ObcMethod::ShiftInvert).unwrap();
        assert!((l.sigma[(0, 0)] - r.sigma[(0, 0)]).abs() < 1e-8, "inversion-symmetric chain");
    }

    #[test]
    fn injection_vanishes_in_gap() {
        let e = 3.5; // outside the band |E| ≤ 2
        let obc = self_energy(&chain(), e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
        assert_eq!(obc.injection.cols(), 0);
        assert_eq!(obc.inc_modes.len(), 0);
        // And Σ is real (no broadening without open channels).
        assert!(obc.sigma[(0, 0)].im.abs() < 1e-7);
    }

    #[test]
    fn broadening_matrix_is_positive_semidefinite() {
        // Γ = i(Σ − Σᴴ) ⪰ 0 for retarded self-energies.
        let h00 = ZMat::from_diag(&[c64(-1.0, 0.0), c64(1.0, 0.0)]);
        let mut h01 = ZMat::from_diag(&[c64(0.45, 0.0), c64(-0.45, 0.0)]);
        h01[(0, 1)] = c64(0.1, 0.0);
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(2), ZMat::zeros(2, 2));
        for &e in &[-1.1f64, 1.3] {
            let obc = self_energy(&lead, e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
            let gamma = &obc.sigma.scaled(Complex64::I) - &obc.sigma.adjoint().scaled(Complex64::I);
            // Positive semidefinite ⇔ all eigenvalues ≥ −tol (Hermitian Γ).
            let dec = qtx_linalg::eig(&gamma).unwrap();
            for v in dec.values {
                assert!(v.re > -1e-7, "Γ eigenvalue {v} negative at E = {e}");
            }
        }
    }

    #[test]
    fn feast_stall_falls_back_to_dense_route() {
        // max_refine = 0 guarantees a FEAST stall at an in-band energy
        // (the annulus holds modes it never gets to refine towards)...
        let cfg = FeastConfig { max_refine: 0, ..FeastConfig::default() };
        let pencil = crate::companion::CompanionPencil::at_energy(&chain(), 0.4, 0.0);
        assert!(crate::feast::feast_annulus(&pencil, cfg).is_err());
        // ...but self_energy still succeeds through the shift-invert
        // fallback and lands on the exact dense answer.
        let obc = self_energy(&chain(), 0.4, Eta::ZERO, Side::Left, ObcMethod::Feast(cfg)).unwrap();
        let reference =
            self_energy(&chain(), 0.4, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
        assert!(obc.sigma.max_diff(&reference.sigma) < 1e-6);
    }

    #[test]
    fn beyn_method_matches_shift_invert_sigma() {
        let e = 0.6;
        let beyn = self_energy(
            &chain(),
            e,
            Eta::ZERO,
            Side::Left,
            ObcMethod::Beyn(crate::beyn::BeynConfig::default()),
        )
        .unwrap();
        let si = self_energy(&chain(), e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
        assert!(beyn.sigma.max_diff(&si.sigma) < 1e-5);
        assert_eq!(beyn.inc_modes.len(), si.inc_modes.len());
    }

    #[test]
    fn broadened_self_energy_approaches_unbroadened() {
        let e = 0.5;
        let s0 = self_energy(&chain(), e, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
        let s1 = self_energy(&chain(), e, Eta(1e-6), Side::Left, ObcMethod::ShiftInvert).unwrap();
        assert!(s0.sigma.max_diff(&s1.sigma) < 1e-3);
        // Broadening keeps the retarded character.
        assert!(s1.sigma[(0, 0)].im < 0.0);
    }

    /// Pins the deprecated forwarder to the merged entry point until its
    /// removal — downstream code migrating incrementally relies on the
    /// two being bit-identical.
    #[test]
    #[allow(deprecated)]
    fn deprecated_eta_forwarder_matches_merged_entry() {
        let e = 0.5;
        let merged =
            self_energy(&chain(), e, Eta(1e-6), Side::Left, ObcMethod::ShiftInvert).unwrap().sigma;
        let fwd =
            self_energy_eta(&chain(), e, 1e-6, Side::Left, ObcMethod::ShiftInvert).unwrap().sigma;
        assert_eq!(merged.max_diff(&fwd), 0.0, "forwarder must be bit-identical");
    }

    #[test]
    fn solve_counter_counts_real_builds_only() {
        let before = obc_solves_total();
        self_energy(&chain(), 0.3, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap();
        self_energy(&chain(), 0.3, Eta::ZERO, Side::Right, ObcMethod::Decimation).unwrap();
        assert!(obc_solves_total() - before >= 2, "every real build increments the counter");
    }

    #[test]
    fn decimation_method_variant_returns_sigma_only() {
        let obc = self_energy(&chain(), 0.2, Eta::ZERO, Side::Left, ObcMethod::Decimation).unwrap();
        assert_eq!(obc.injection.cols(), 0);
        let reference = self_energy_decimation(&chain(), 0.2, 1e-8, Side::Left).unwrap();
        assert!(obc.sigma.max_diff(&reference) < 1e-12);
    }
}
