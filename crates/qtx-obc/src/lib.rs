//! # qtx-obc — open boundary conditions (§3.A)
//!
//! Injecting electrons at the contacts of Eq. 5 requires the boundary
//! self-energy `Σ^RB(E)` and injection vector `Inj(E)`, both built from
//! the wave vectors `k_B` and eigenmodes `u_B` of the semi-infinite leads.
//! Those come from the polynomial eigenvalue problem Eq. 6, which this
//! crate linearizes into a quadratic companion pencil after folding `NBW`
//! unit cells into one superblock (the paper's "analytical block LU"
//! size reduction appears here as the `nf`-sized polynomial solve in
//! [`companion::CompanionPencil::solve_shifted`]).
//!
//! Three interchangeable algorithms produce the lead modes:
//!
//! * [`feast::feast_annulus`] — the paper's contribution: a contour
//!   integration (FEAST) projector on the annulus `1/R < |λ| < R` around
//!   the unit circle (Fig. 5), catching the propagating and slow-decaying
//!   modes while ignoring the numerically irrelevant fast-decaying ones;
//! * [`baselines::shift_invert_modes`] — the tight-binding-era baseline
//!   (ref. [38]): dense `(A − σB)⁻¹B` spectral transformation;
//! * [`baselines::sancho_rubio`] — the iterative decimation scheme of
//!   ref. [40], used here as an independent ground truth for `Σ^RB`.
//!
//! Conventions (fixed by the 1-D analytic chain and enforced by tests):
//! `T = E·S − H`; device cells are `q = 0..nb−1`; the left lead occupies
//! `q ≤ −1` and the right lead `q ≥ nb`; retarded boundary conditions keep
//! modes that propagate (group velocity) or decay *away* from the device.

pub mod baselines;
pub mod beyn;
pub mod companion;
pub mod error;
pub mod feast;
pub mod frame;
pub mod lead;
pub mod modes;
pub mod selfenergy;

pub use baselines::{dense_modes, sancho_rubio, shift_invert_modes};
pub use beyn::{beyn_annulus, beyn_annulus_ws, BeynConfig};
pub use companion::CompanionPencil;
pub use error::{ObcError, ObcOutcome};
pub use feast::{feast_annulus, feast_annulus_ws, FeastConfig, FeastStats};
pub use frame::{
    decode_obc_result, decode_obc_result_parts, encode_obc_result, encode_obc_result_compressed,
    FrameDecodeError, ObcFrameParts,
};
pub use lead::LeadBlocks;
pub use modes::{classify_modes, classify_modes_eta, LeadModes, ModeSet};
#[allow(deprecated)]
pub use selfenergy::self_energy_eta;
pub use selfenergy::{
    lead_modes, obc_solves_total, self_energy, self_energy_decimation, Eta, ObcResult, Side,
};

/// Which algorithm computes the lead modes / self-energies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObcMethod {
    /// FEAST annulus contour integration (the paper's method).
    Feast(FeastConfig),
    /// Beyn's single-shot contour moments (the ref. [43] modification the
    /// paper suggests for further speedups).
    Beyn(BeynConfig),
    /// Dense shift-and-invert spectral transformation (baseline, ref. [38]).
    ShiftInvert,
    /// Sancho–Rubio decimation (NEGF-era baseline, ref. [40]); produces
    /// `Σ` directly, no modes — injection then falls back to shift-invert.
    Decimation,
}

impl Default for ObcMethod {
    fn default() -> Self {
        ObcMethod::Feast(FeastConfig::default())
    }
}
