//! Byte frames for [`ObcResult`] — the storage format of the
//! content-addressed self-energy cache in `qtx-core`.
//!
//! The format is little-endian and exact: every f64 travels as its raw
//! bit pattern, so `decode(encode(r))` reproduces `sigma`, `injection`
//! and both mode sets *bit-identically*. That property is what lets a
//! cache hit stand in for a fresh Beyn/FEAST/Sancho–Rubio solve without
//! perturbing a single downstream bit.
//!
//! [`FeastStats`](crate::feast::FeastStats) is deliberately **not**
//! serialized: it is observability (refinement counts, residual history),
//! not physics — a decoded result carries `stats: None` and is documented
//! to do so. Nothing in the transport pipeline consumes stats on the
//! solve path.

use crate::modes::ModeSet;
use crate::selfenergy::ObcResult;
use qtx_linalg::{Complex64, ZMat};

/// Magic prefix of every encoded [`ObcResult`] frame.
pub const OBC_FRAME_MAGIC: &[u8; 8] = b"QTXOBC01";

/// Typed decode failure: a torn, truncated, or foreign byte frame must
/// surface loudly instead of producing a silently-garbled self-energy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// The frame does not start with [`OBC_FRAME_MAGIC`].
    BadMagic,
    /// The frame ended before `needed` bytes at offset `at`.
    Truncated { at: usize, needed: usize, have: usize },
    /// Bytes remained after a complete decode.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDecodeError::BadMagic => write!(f, "ObcResult frame: bad magic"),
            FrameDecodeError::Truncated { at, needed, have } => {
                write!(f, "ObcResult frame truncated at byte {at}: needed {needed}, have {have}")
            }
            FrameDecodeError::TrailingBytes { extra } => {
                write!(f, "ObcResult frame: {extra} trailing bytes")
            }
        }
    }
}

impl std::error::Error for FrameDecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_mat(out: &mut Vec<u8>, m: &ZMat) {
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    for z in m.as_slice() {
        put_f64(out, z.re);
        put_f64(out, z.im);
    }
}

fn put_modes(out: &mut Vec<u8>, modes: &[ModeSet]) {
    put_u32(out, modes.len() as u32);
    for m in modes {
        put_f64(out, m.lambda.re);
        put_f64(out, m.lambda.im);
        put_f64(out, m.velocity);
        out.push(m.propagating as u8);
        put_u32(out, m.u.len() as u32);
        for z in &m.u {
            put_f64(out, z.re);
            put_f64(out, z.im);
        }
    }
}

/// Encodes an [`ObcResult`] into a self-describing byte frame
/// (`stats` excluded — see the module docs).
pub fn encode_obc_result(r: &ObcResult) -> Vec<u8> {
    let mode_bytes =
        |ms: &[ModeSet]| 4 + ms.iter().map(|m| 8 + 8 + 8 + 1 + 4 + 16 * m.u.len()).sum::<usize>();
    let cap = 8
        + (8 + 16 * r.sigma.as_slice().len())
        + (8 + 16 * r.injection.as_slice().len())
        + mode_bytes(&r.inc_modes)
        + mode_bytes(&r.out_modes);
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(OBC_FRAME_MAGIC);
    put_mat(&mut out, &r.sigma);
    put_mat(&mut out, &r.injection);
    put_modes(&mut out, &r.inc_modes);
    put_modes(&mut out, &r.out_modes);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameDecodeError> {
        let have = self.buf.len().saturating_sub(self.at);
        if have < n {
            return Err(FrameDecodeError::Truncated { at: self.at, needed: n, have });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FrameDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, FrameDecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn c64(&mut self) -> Result<Complex64, FrameDecodeError> {
        let re = self.f64()?;
        let im = self.f64()?;
        Ok(Complex64::new(re, im))
    }

    fn mat(&mut self) -> Result<ZMat, FrameDecodeError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        // Bound the allocation by the bytes actually present: a crafted
        // header cannot force a huge up-front reservation.
        let have = self.buf.len().saturating_sub(self.at);
        let need = rows.saturating_mul(cols).saturating_mul(16);
        if have < need {
            return Err(FrameDecodeError::Truncated { at: self.at, needed: need, have });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.c64()?);
        }
        Ok(ZMat::from_recycled_buffer(rows, cols, data))
    }

    fn modes(&mut self) -> Result<Vec<ModeSet>, FrameDecodeError> {
        let n = self.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            let lambda = self.c64()?;
            let velocity = self.f64()?;
            let propagating = self.take(1)?[0] != 0;
            let len = self.u32()? as usize;
            let have = self.buf.len().saturating_sub(self.at);
            if have < len.saturating_mul(16) {
                return Err(FrameDecodeError::Truncated { at: self.at, needed: len * 16, have });
            }
            let mut u = Vec::with_capacity(len);
            for _ in 0..len {
                u.push(self.c64()?);
            }
            out.push(ModeSet { lambda, u, velocity, propagating });
        }
        Ok(out)
    }
}

/// Decodes a frame produced by [`encode_obc_result`]. The returned result
/// carries `stats: None` (stats are not serialized).
pub fn decode_obc_result(buf: &[u8]) -> Result<ObcResult, FrameDecodeError> {
    let mut c = Cursor { buf, at: 0 };
    if c.take(8)? != OBC_FRAME_MAGIC {
        return Err(FrameDecodeError::BadMagic);
    }
    let sigma = c.mat()?;
    let injection = c.mat()?;
    let inc_modes = c.modes()?;
    let out_modes = c.modes()?;
    if c.at != buf.len() {
        return Err(FrameDecodeError::TrailingBytes { extra: buf.len() - c.at });
    }
    Ok(ObcResult { sigma, injection, inc_modes, out_modes, stats: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfenergy::{self_energy, Eta, Side};
    use crate::{LeadBlocks, ObcMethod};

    fn sample() -> ObcResult {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        self_energy(&lead, 0.5, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let r = sample();
        let buf = encode_obc_result(&r);
        let back = decode_obc_result(&buf).unwrap();
        assert_eq!(back.sigma.max_diff(&r.sigma), 0.0);
        assert_eq!(back.injection.max_diff(&r.injection), 0.0);
        assert_eq!(back.inc_modes.len(), r.inc_modes.len());
        assert_eq!(back.out_modes.len(), r.out_modes.len());
        for (a, b) in back.inc_modes.iter().zip(&r.inc_modes) {
            assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
            assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
            assert_eq!(a.velocity.to_bits(), b.velocity.to_bits());
            assert_eq!(a.propagating, b.propagating);
            assert!(a.u.iter().zip(&b.u).all(|(x, y)| x == y));
        }
        assert!(back.stats.is_none(), "stats are observability, not physics — dropped");
    }

    #[test]
    fn torn_frames_are_typed_errors() {
        let r = sample();
        let buf = encode_obc_result(&r);
        assert_eq!(
            decode_obc_result(&buf[..4]).unwrap_err(),
            FrameDecodeError::Truncated { at: 0, needed: 8, have: 4 }
        );
        for cut in [buf.len() - 1, buf.len() / 2, 9] {
            assert!(matches!(
                decode_obc_result(&buf[..cut]),
                Err(FrameDecodeError::Truncated { .. })
            ));
        }
        let mut extra = buf.clone();
        extra.push(0);
        assert_eq!(
            decode_obc_result(&extra).unwrap_err(),
            FrameDecodeError::TrailingBytes { extra: 1 }
        );
        let mut bad = buf;
        bad[0] = b'x';
        assert_eq!(decode_obc_result(&bad).unwrap_err(), FrameDecodeError::BadMagic);
    }
}
