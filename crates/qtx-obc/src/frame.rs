//! Byte frames for [`ObcResult`] — the storage format of the
//! content-addressed self-energy cache in `qtx-core`.
//!
//! The format is little-endian and exact: every f64 travels as its raw
//! bit pattern, so `decode(encode(r))` reproduces `sigma`, `injection`
//! and both mode sets *bit-identically*. That property is what lets a
//! cache hit stand in for a fresh Beyn/FEAST/Sancho–Rubio solve without
//! perturbing a single downstream bit.
//!
//! [`FeastStats`](crate::feast::FeastStats) is deliberately **not**
//! serialized: it is observability (refinement counts, residual history),
//! not physics — a decoded result carries `stats: None` and is documented
//! to do so. Nothing in the transport pipeline consumes stats on the
//! solve path.

use crate::modes::ModeSet;
use crate::selfenergy::ObcResult;
use qtx_linalg::{Complex64, ZMat};
use qtx_sparse::CompressedSigma;

/// Magic prefix of every dense-Σ [`ObcResult`] frame.
pub const OBC_FRAME_MAGIC: &[u8; 8] = b"QTXOBC01";

/// Magic prefix of compressed-Σ frames: Σ travels as truncated factors
/// `U·Vᴴ` plus the recorded error bound, so cached entries shrink with
/// the numerical rank of the lead. Only emitted when a caller opts into a
/// tolerance > 0 — `QTXOBC01` frames stay bit-identical.
pub const OBC_FRAME_MAGIC_V2: &[u8; 8] = b"QTXOBC02";

/// Typed decode failure: a torn, truncated, or foreign byte frame must
/// surface loudly instead of producing a silently-garbled self-energy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// The frame does not start with [`OBC_FRAME_MAGIC`].
    BadMagic,
    /// The frame ended before `needed` bytes at offset `at`.
    Truncated { at: usize, needed: usize, have: usize },
    /// Bytes remained after a complete decode.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDecodeError::BadMagic => write!(f, "ObcResult frame: bad magic"),
            FrameDecodeError::Truncated { at, needed, have } => {
                write!(f, "ObcResult frame truncated at byte {at}: needed {needed}, have {have}")
            }
            FrameDecodeError::TrailingBytes { extra } => {
                write!(f, "ObcResult frame: {extra} trailing bytes")
            }
        }
    }
}

impl std::error::Error for FrameDecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_mat(out: &mut Vec<u8>, m: &ZMat) {
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    for z in m.as_slice() {
        put_f64(out, z.re);
        put_f64(out, z.im);
    }
}

fn put_modes(out: &mut Vec<u8>, modes: &[ModeSet]) {
    put_u32(out, modes.len() as u32);
    for m in modes {
        put_f64(out, m.lambda.re);
        put_f64(out, m.lambda.im);
        put_f64(out, m.velocity);
        out.push(m.propagating as u8);
        put_u32(out, m.u.len() as u32);
        for z in &m.u {
            put_f64(out, z.re);
            put_f64(out, z.im);
        }
    }
}

/// Encodes an [`ObcResult`] into a self-describing byte frame
/// (`stats` excluded — see the module docs).
pub fn encode_obc_result(r: &ObcResult) -> Vec<u8> {
    let mode_bytes =
        |ms: &[ModeSet]| 4 + ms.iter().map(|m| 8 + 8 + 8 + 1 + 4 + 16 * m.u.len()).sum::<usize>();
    let cap = 8
        + (8 + 16 * r.sigma.as_slice().len())
        + (8 + 16 * r.injection.as_slice().len())
        + mode_bytes(&r.inc_modes)
        + mode_bytes(&r.out_modes);
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(OBC_FRAME_MAGIC);
    put_mat(&mut out, &r.sigma);
    put_mat(&mut out, &r.injection);
    put_modes(&mut out, &r.inc_modes);
    put_modes(&mut out, &r.out_modes);
    out
}

/// Encodes an [`ObcResult`] with Σ-compression at relative tolerance
/// `tol`. `tol ≤ 0`, or a Σ whose numerical rank is too high to pay off,
/// falls back to the exact [`encode_obc_result`] frame — so enabling
/// compression can only ever shrink frames, never degrade an entry that
/// has no low-rank structure to exploit.
pub fn encode_obc_result_compressed(r: &ObcResult, tol: f64) -> Vec<u8> {
    if tol <= 0.0 {
        return encode_obc_result(r);
    }
    match CompressedSigma::compress(&r.sigma, tol) {
        CompressedSigma::Dense(_) => encode_obc_result(r),
        CompressedSigma::Factored { u, v, bound } => {
            let mode_bytes = |ms: &[ModeSet]| {
                4 + ms.iter().map(|m| 8 + 8 + 8 + 1 + 4 + 16 * m.u.len()).sum::<usize>()
            };
            let cap = 8
                + (8 + 16 * u.as_slice().len())
                + (8 + 16 * v.as_slice().len())
                + 8
                + (8 + 16 * r.injection.as_slice().len())
                + mode_bytes(&r.inc_modes)
                + mode_bytes(&r.out_modes);
            let mut out = Vec::with_capacity(cap);
            out.extend_from_slice(OBC_FRAME_MAGIC_V2);
            put_mat(&mut out, &u);
            put_mat(&mut out, &v);
            put_f64(&mut out, bound);
            put_mat(&mut out, &r.injection);
            put_modes(&mut out, &r.inc_modes);
            put_modes(&mut out, &r.out_modes);
            out
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameDecodeError> {
        let have = self.buf.len().saturating_sub(self.at);
        if have < n {
            return Err(FrameDecodeError::Truncated { at: self.at, needed: n, have });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FrameDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, FrameDecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn c64(&mut self) -> Result<Complex64, FrameDecodeError> {
        let re = self.f64()?;
        let im = self.f64()?;
        Ok(Complex64::new(re, im))
    }

    fn mat(&mut self) -> Result<ZMat, FrameDecodeError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        // Bound the allocation by the bytes actually present: a crafted
        // header cannot force a huge up-front reservation.
        let have = self.buf.len().saturating_sub(self.at);
        let need = rows.saturating_mul(cols).saturating_mul(16);
        if have < need {
            return Err(FrameDecodeError::Truncated { at: self.at, needed: need, have });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.c64()?);
        }
        Ok(ZMat::from_recycled_buffer(rows, cols, data))
    }

    fn modes(&mut self) -> Result<Vec<ModeSet>, FrameDecodeError> {
        let n = self.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            let lambda = self.c64()?;
            let velocity = self.f64()?;
            let propagating = self.take(1)?[0] != 0;
            let len = self.u32()? as usize;
            let have = self.buf.len().saturating_sub(self.at);
            if have < len.saturating_mul(16) {
                return Err(FrameDecodeError::Truncated { at: self.at, needed: len * 16, have });
            }
            let mut u = Vec::with_capacity(len);
            for _ in 0..len {
                u.push(self.c64()?);
            }
            out.push(ModeSet { lambda, u, velocity, propagating });
        }
        Ok(out)
    }
}

/// A decoded frame with Σ still in whatever representation it traveled
/// in. This is the *lazy* decode: a `QTXOBC02` frame's factors are not
/// multiplied out here — a boundary-block solver can consume them
/// directly, and only [`ObcFrameParts::into_result`] pays for expansion.
#[derive(Debug, Clone)]
pub struct ObcFrameParts {
    /// Self-energy, dense (v1 frames) or factored (v2 frames).
    pub sigma: CompressedSigma,
    /// Injection block, always dense.
    pub injection: ZMat,
    /// Incoming mode set.
    pub inc_modes: Vec<ModeSet>,
    /// Outgoing mode set.
    pub out_modes: Vec<ModeSet>,
}

impl ObcFrameParts {
    /// Expands into a dense [`ObcResult`] (`stats: None`). For v1 frames
    /// the stored Σ moves through untouched — bit-identical; for v2 frames
    /// this is the point where `U·Vᴴ` is materialized.
    pub fn into_result(self) -> ObcResult {
        let sigma = match self.sigma {
            CompressedSigma::Dense(m) => m,
            ref factored => factored.to_dense(),
        };
        ObcResult {
            sigma,
            injection: self.injection,
            inc_modes: self.inc_modes,
            out_modes: self.out_modes,
            stats: None,
        }
    }
}

/// Decodes either frame version without expanding a compressed Σ.
pub fn decode_obc_result_parts(buf: &[u8]) -> Result<ObcFrameParts, FrameDecodeError> {
    let mut c = Cursor { buf, at: 0 };
    let magic = c.take(8)?;
    let compressed = if magic == OBC_FRAME_MAGIC {
        false
    } else if magic == OBC_FRAME_MAGIC_V2 {
        true
    } else {
        return Err(FrameDecodeError::BadMagic);
    };
    let sigma = if compressed {
        let u = c.mat()?;
        let v = c.mat()?;
        let bound = c.f64()?;
        CompressedSigma::Factored { u, v, bound }
    } else {
        CompressedSigma::Dense(c.mat()?)
    };
    let injection = c.mat()?;
    let inc_modes = c.modes()?;
    let out_modes = c.modes()?;
    if c.at != buf.len() {
        return Err(FrameDecodeError::TrailingBytes { extra: buf.len() - c.at });
    }
    Ok(ObcFrameParts { sigma, injection, inc_modes, out_modes })
}

/// Decodes a frame produced by [`encode_obc_result`] (or its compressed
/// variant). The returned result carries `stats: None` (stats are not
/// serialized).
pub fn decode_obc_result(buf: &[u8]) -> Result<ObcResult, FrameDecodeError> {
    decode_obc_result_parts(buf).map(ObcFrameParts::into_result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfenergy::{self_energy, Eta, Side};
    use crate::{LeadBlocks, ObcMethod};

    fn sample() -> ObcResult {
        let lead = LeadBlocks::chain_1d(0.0, -1.0);
        self_energy(&lead, 0.5, Eta::ZERO, Side::Left, ObcMethod::ShiftInvert).unwrap()
    }

    /// An 8-orbital lead whose inter-cell coupling has rank 2, so
    /// `Σ = τ·g·τᴴ` has numerical rank ≤ 2 and the v2 frame path is
    /// exercised deterministically (a 1×1 chain Σ can never compress).
    fn block_sample() -> ObcResult {
        use qtx_linalg::{c64, gemm, Op};
        let nf = 8;
        let mut h00 = ZMat::zeros(nf, nf);
        let r = ZMat::random(nf, nf, 11);
        for i in 0..nf {
            for j in 0..nf {
                h00[(i, j)] = 0.1 * (r[(i, j)] + r[(j, i)].conj());
            }
            h00[(i, i)] += c64(2.0 + i as f64 * 0.1, 0.0);
        }
        let a = ZMat::random(nf, 2, 13);
        let b = ZMat::random(nf, 2, 17);
        let mut h01 = ZMat::zeros(nf, nf);
        gemm(c64(0.2, 0.0), &a, Op::None, &b, Op::Adjoint, Complex64::ZERO, &mut h01);
        let lead = LeadBlocks::new(h00, h01, ZMat::identity(nf), ZMat::zeros(nf, nf));
        self_energy(&lead, 0.3, Eta(1e-6), Side::Left, ObcMethod::Decimation).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let r = sample();
        let buf = encode_obc_result(&r);
        let back = decode_obc_result(&buf).unwrap();
        assert_eq!(back.sigma.max_diff(&r.sigma), 0.0);
        assert_eq!(back.injection.max_diff(&r.injection), 0.0);
        assert_eq!(back.inc_modes.len(), r.inc_modes.len());
        assert_eq!(back.out_modes.len(), r.out_modes.len());
        for (a, b) in back.inc_modes.iter().zip(&r.inc_modes) {
            assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
            assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
            assert_eq!(a.velocity.to_bits(), b.velocity.to_bits());
            assert_eq!(a.propagating, b.propagating);
            assert!(a.u.iter().zip(&b.u).all(|(x, y)| x == y));
        }
        assert!(back.stats.is_none(), "stats are observability, not physics — dropped");
    }

    #[test]
    fn tiny_sigma_falls_back_to_exact_frame() {
        // A 1×1 Σ has no rank to shed: the compressed encoder must emit
        // the exact v1 frame regardless of tolerance.
        let r = sample();
        let exact = encode_obc_result(&r);
        assert_eq!(encode_obc_result_compressed(&r, 1e-8), exact);
    }

    #[test]
    fn compressed_frames_shrink_and_stay_within_bound() {
        let r = block_sample();
        let exact = encode_obc_result(&r);
        // tol = 0 must emit the exact frame byte-for-byte.
        assert_eq!(encode_obc_result_compressed(&r, 0.0), exact);
        let tol = 1e-8;
        let buf = encode_obc_result_compressed(&r, tol);
        assert_eq!(buf[..8], *OBC_FRAME_MAGIC_V2, "rank-2 Σ must take the compressed path");
        let parts = decode_obc_result_parts(&buf).unwrap();
        assert!(buf.len() < exact.len(), "compressed frame must shrink");
        assert!(parts.sigma.is_compressed());
        let back = parts.clone().into_result();
        let err = (&back.sigma - &r.sigma).norm_fro();
        assert!(err <= parts.sigma.bound() + 1e-14, "err {err} > bound");
        assert!(parts.sigma.bound() <= tol * r.sigma.norm_fro() * (1.0 + 1e-12));
        // Injection and modes travel bit-identically either way.
        let back = decode_obc_result(&buf).unwrap();
        assert_eq!(back.injection.max_diff(&r.injection), 0.0);
        assert_eq!(back.inc_modes.len(), r.inc_modes.len());
    }

    #[test]
    fn torn_v2_frames_are_typed_errors() {
        let r = block_sample();
        let buf = encode_obc_result_compressed(&r, 1e-8);
        assert_eq!(buf[..8], *OBC_FRAME_MAGIC_V2);
        for cut in [buf.len() - 1, buf.len() / 2, 9] {
            assert!(matches!(
                decode_obc_result(&buf[..cut]),
                Err(FrameDecodeError::Truncated { .. })
            ));
        }
        let mut extra = buf.clone();
        extra.push(0);
        assert_eq!(
            decode_obc_result(&extra).unwrap_err(),
            FrameDecodeError::TrailingBytes { extra: 1 }
        );
    }

    #[test]
    fn torn_frames_are_typed_errors() {
        let r = sample();
        let buf = encode_obc_result(&r);
        assert_eq!(
            decode_obc_result(&buf[..4]).unwrap_err(),
            FrameDecodeError::Truncated { at: 0, needed: 8, have: 4 }
        );
        for cut in [buf.len() - 1, buf.len() / 2, 9] {
            assert!(matches!(
                decode_obc_result(&buf[..cut]),
                Err(FrameDecodeError::Truncated { .. })
            ));
        }
        let mut extra = buf.clone();
        extra.push(0);
        assert_eq!(
            decode_obc_result(&extra).unwrap_err(),
            FrameDecodeError::TrailingBytes { extra: 1 }
        );
        let mut bad = buf;
        bad[0] = b'x';
        assert_eq!(decode_obc_result(&bad).unwrap_err(), FrameDecodeError::BadMagic);
    }
}
