//! Virtual devices, kernel cost model and memory accounting.

use crate::trace::KernelRecord;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Static description of an accelerator (Table I's GPU column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Double-precision peak (GFlop/s).
    pub peak_gflops: f64,
    /// Fraction of peak reached by large `zgemm` (cuBLAS-like).
    pub gemm_efficiency: f64,
    /// Fraction of peak reached by `zgesv_nopiv`-style factorizations
    /// (MAGMA hybrid kernels are markedly less efficient than GEMM).
    pub lu_efficiency: f64,
    /// Device memory (GiB).
    pub mem_gib: f64,
    /// Host↔device bandwidth (GiB/s, PCIe 2.0 x16 on the XK7/XC30).
    pub pcie_gibs: f64,
    /// Device↔device bandwidth (GiB/s, through the interconnect).
    pub d2d_gibs: f64,
    /// Idle power draw (W).
    pub idle_w: f64,
    /// Power at full utilization (W); the paper measured 146 W average
    /// during the 15 PFlop/s run.
    pub busy_w: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla K20X — the accelerator of both Piz Daint and Titan.
    pub fn k20x() -> Self {
        GpuSpec {
            name: "Tesla K20X".into(),
            peak_gflops: 1311.0,
            gemm_efficiency: 0.80,
            lu_efficiency: 0.42,
            mem_gib: 6.0,
            pcie_gibs: 8.0,
            d2d_gibs: 6.0,
            idle_w: 25.0,
            busy_w: 170.0,
        }
    }

    /// K20X with the Titan-specific MAGMA degradation of §5.A: the hybrid
    /// `zgesv_nopiv_gpu` runs ~10% slower per node than on Piz Daint
    /// because the Opteron cores compete with the library's host part.
    pub fn k20x_titan() -> Self {
        let mut s = Self::k20x();
        s.lu_efficiency *= 0.90;
        s
    }
}

/// Logical kernel classes with distinct cost-model rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense complex matrix multiplication (cuBLAS `zgemm`).
    Gemm,
    /// LU / LDLᴴ factorization + substitution (MAGMA `z?esv_nopiv_gpu`).
    Solve,
    /// Host-to-device transfer.
    H2D,
    /// Device-to-host transfer.
    D2H,
    /// Device-to-device transfer.
    D2D,
    /// Anything else accounted at GEMM efficiency.
    Other,
}

impl KernelClass {
    /// Short label used in traces.
    pub fn label(self) -> &'static str {
        match self {
            KernelClass::Gemm => "zgemm",
            KernelClass::Solve => "zgesv_nopiv",
            KernelClass::H2D => "H-to-D",
            KernelClass::D2H => "D-to-H",
            KernelClass::D2D => "D-to-D",
            KernelClass::Other => "kernel",
        }
    }

    fn is_transfer(self) -> bool {
        matches!(self, KernelClass::H2D | KernelClass::D2H | KernelClass::D2D)
    }
}

/// One virtual accelerator.
#[derive(Debug)]
pub struct Device {
    /// Device index.
    pub id: usize,
    /// Hardware description.
    pub spec: GpuSpec,
    /// Virtual clock (seconds since runtime start).
    pub clock: f64,
    /// Bytes currently allocated.
    pub mem_used: u64,
    /// Kernel records on the virtual timeline.
    pub trace: Vec<KernelRecord>,
}

impl Device {
    fn duration_of(&self, class: KernelClass, flops: u64, bytes: u64) -> f64 {
        if class.is_transfer() {
            let bw = match class {
                KernelClass::D2D => self.spec.d2d_gibs,
                _ => self.spec.pcie_gibs,
            };
            // 10 µs launch latency + bandwidth term.
            1e-5 + bytes as f64 / (bw * 1024.0 * 1024.0 * 1024.0)
        } else {
            let eff = match class {
                KernelClass::Solve => self.spec.lu_efficiency,
                _ => self.spec.gemm_efficiency,
            };
            2e-5 + flops as f64 / (self.spec.peak_gflops * 1e9 * eff)
        }
    }
}

/// A pool of virtual accelerators with shared timeline bookkeeping.
///
/// Real computation runs on the host; callers wrap each logical kernel in
/// [`AccelRuntime::account`] so the device clocks and traces reflect what
/// a K20X would have done. `sync` models a barrier (all clocks jump to the
/// max), matching the lockstep phases P1–P4 of Fig. 6.
pub struct AccelRuntime {
    devices: Vec<Mutex<Device>>,
}

impl AccelRuntime {
    /// Creates `n` devices of the given spec.
    pub fn new(n: usize, spec: GpuSpec) -> Self {
        AccelRuntime {
            devices: (0..n)
                .map(|id| {
                    Mutex::new(Device {
                        id,
                        spec: spec.clone(),
                        clock: 0.0,
                        mem_used: 0,
                        trace: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are configured.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Accounts a kernel on `dev`: advances its clock by the cost model
    /// and records the interval. Returns the kernel duration (virtual s).
    pub fn account(&self, dev: usize, class: KernelClass, flops: u64, bytes: u64) -> f64 {
        let mut d = self.devices[dev].lock();
        let dur = d.duration_of(class, flops, bytes);
        let start = d.clock;
        d.clock += dur;
        let end = d.clock;
        d.trace.push(KernelRecord {
            device: dev,
            label: class.label().to_string(),
            t_start: start,
            t_end: end,
            flops,
            bytes,
        });
        dur
    }

    /// Models an asynchronous transfer that overlaps compute: records it
    /// on the timeline but does not advance the compute clock (the paper:
    /// "the induced CPU↔GPU data transfer overlaps with computation
    /// (no cost)").
    pub fn account_overlapped(&self, dev: usize, class: KernelClass, bytes: u64) {
        let mut d = self.devices[dev].lock();
        let dur = d.duration_of(class, 0, bytes);
        let start = d.clock;
        d.trace.push(KernelRecord {
            device: dev,
            label: class.label().to_string(),
            t_start: start,
            t_end: start + dur,
            flops: 0,
            bytes,
        });
    }

    /// Allocates device memory; panics if the device would overflow — the
    /// caller must use more GPUs (the §3.C placement rule).
    pub fn alloc(&self, dev: usize, bytes: u64) {
        let mut d = self.devices[dev].lock();
        let cap = (d.spec.mem_gib * 1024.0 * 1024.0 * 1024.0) as u64;
        assert!(
            d.mem_used + bytes <= cap,
            "device {dev} out of memory: {} + {bytes} > {cap}",
            d.mem_used
        );
        d.mem_used += bytes;
    }

    /// Frees device memory.
    pub fn free(&self, dev: usize, bytes: u64) {
        let mut d = self.devices[dev].lock();
        d.mem_used = d.mem_used.saturating_sub(bytes);
    }

    /// Remaining capacity of a device in bytes.
    pub fn mem_available(&self, dev: usize) -> u64 {
        let d = self.devices[dev].lock();
        (d.spec.mem_gib * 1024.0 * 1024.0 * 1024.0) as u64 - d.mem_used
    }

    /// Barrier: all device clocks advance to the global maximum.
    pub fn sync(&self) -> f64 {
        let max = self.max_clock();
        for d in &self.devices {
            d.lock().clock = max;
        }
        max
    }

    /// Latest clock across devices (virtual makespan).
    pub fn max_clock(&self) -> f64 {
        self.devices.iter().map(|d| d.lock().clock).fold(0.0, f64::max)
    }

    /// Snapshot of all kernel records, sorted by start time.
    pub fn traces(&self) -> Vec<KernelRecord> {
        let mut all: Vec<KernelRecord> =
            self.devices.iter().flat_map(|d| d.lock().trace.clone()).collect();
        all.sort_by(|a, b| a.t_start.partial_cmp(&b.t_start).unwrap());
        all
    }

    /// Busy fraction of a device over `[0, horizon]`.
    pub fn utilization(&self, dev: usize, horizon: f64) -> f64 {
        let d = self.devices[dev].lock();
        let busy: f64 = d
            .trace
            .iter()
            .filter(|r| r.flops > 0)
            .map(|r| (r.t_end.min(horizon) - r.t_start.min(horizon)).max(0.0))
            .sum();
        (busy / horizon.max(1e-12)).min(1.0)
    }

    /// Total FLOPs executed across devices.
    pub fn total_flops(&self) -> u64 {
        self.devices.iter().map(|d| d.lock().trace.iter().map(|r| r.flops).sum::<u64>()).sum()
    }

    /// Device spec (all devices share one).
    pub fn spec(&self) -> GpuSpec {
        self.devices[0].lock().spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_faster_than_lu_per_flop() {
        let rt = AccelRuntime::new(1, GpuSpec::k20x());
        let t_gemm = rt.account(0, KernelClass::Gemm, 1_000_000_000, 0);
        let t_lu = rt.account(0, KernelClass::Solve, 1_000_000_000, 0);
        assert!(t_lu > t_gemm * 1.5, "MAGMA LU is much less efficient than cuBLAS GEMM");
    }

    #[test]
    fn clock_advances_and_sync_aligns() {
        let rt = AccelRuntime::new(2, GpuSpec::k20x());
        rt.account(0, KernelClass::Gemm, 5_000_000_000, 0);
        assert!(rt.max_clock() > 0.0);
        let m = rt.sync();
        assert!((rt.utilization(1, m) - 0.0).abs() < 1e-12, "device 1 idle so far");
        rt.account(1, KernelClass::Gemm, 1_000_000, 0);
        assert!(rt.max_clock() > m);
    }

    #[test]
    fn memory_accounting_enforces_capacity() {
        let rt = AccelRuntime::new(1, GpuSpec::k20x());
        let cap = rt.mem_available(0);
        rt.alloc(0, cap / 2);
        assert_eq!(rt.mem_available(0), cap - cap / 2);
        rt.free(0, cap / 2);
        assert_eq!(rt.mem_available(0), cap);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn oversubscription_panics() {
        let rt = AccelRuntime::new(1, GpuSpec::k20x());
        rt.alloc(0, u64::MAX / 4);
    }

    #[test]
    fn overlapped_transfers_do_not_advance_clock() {
        let rt = AccelRuntime::new(1, GpuSpec::k20x());
        let before = rt.max_clock();
        rt.account_overlapped(0, KernelClass::H2D, 1 << 30);
        assert_eq!(rt.max_clock(), before);
        assert_eq!(rt.traces().len(), 1);
    }

    #[test]
    fn titan_variant_slower_lu() {
        let daint = GpuSpec::k20x();
        let titan = GpuSpec::k20x_titan();
        assert!(titan.lu_efficiency < daint.lu_efficiency);
        assert_eq!(titan.peak_gflops, daint.peak_gflops);
    }

    #[test]
    fn utilization_fraction() {
        let rt = AccelRuntime::new(1, GpuSpec::k20x());
        let dur = rt.account(0, KernelClass::Gemm, 10_000_000_000, 0);
        let horizon = dur * 2.0;
        let u = rt.utilization(0, horizon);
        assert!((u - 0.5).abs() < 0.05, "u = {u}");
    }
}
