//! Power modelling (Fig. 12(a)).
//!
//! The paper reports a machine-level profile (7.6 MW average, 8.8 MW peak,
//! 1975 MFLOPS/W) and a GPU-level one (146 W average, 5396 MFLOPS/W) for
//! the 15 PFlop/s run. The machine profile "includes the hardware usage
//! (CPU+GPU), the pumping power used by the XDPs, the fan energy ... as
//! well as the line loss" — modelled here as a constant facility overhead
//! on top of utilization-driven node draw.

use crate::device::GpuSpec;
use crate::trace::KernelRecord;
use serde::{Deserialize, Serialize};

/// One sample of a power timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Time (virtual seconds).
    pub t: f64,
    /// Power (watts).
    pub watts: f64,
}

/// Node- and facility-level power coefficients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerModel {
    /// CPU + board draw per node when hosting an active job (W).
    pub node_base_w: f64,
    /// Facility overhead (cooling pumps, blowers, line loss) as a
    /// fraction of IT power.
    pub facility_overhead: f64,
}

impl PowerModel {
    /// Cray-XK7 Titan coefficients: 18 688 nodes, ~8.2 MW measured peak
    /// during the paper's run.
    pub fn titan() -> Self {
        PowerModel { node_base_w: 180.0, facility_overhead: 0.18 }
    }
}

/// Builds a GPU power timeline from kernel records: at each sample the
/// device draws `idle + (busy − idle)·utilization` watts.
pub fn power_profile(
    records: &[KernelRecord],
    spec: &GpuSpec,
    device: usize,
    horizon: f64,
    samples: usize,
) -> Vec<PowerSample> {
    let dt = horizon / samples.max(1) as f64;
    (0..samples)
        .map(|i| {
            let t0 = i as f64 * dt;
            let t1 = t0 + dt;
            let busy: f64 = records
                .iter()
                .filter(|r| r.device == device && r.flops > 0)
                .map(|r| (r.t_end.min(t1) - r.t_start.max(t0)).max(0.0))
                .sum();
            let util = (busy / dt).min(1.0);
            PowerSample {
                t: t0 + dt / 2.0,
                watts: spec.idle_w + (spec.busy_w - spec.idle_w) * util,
            }
        })
        .collect()
}

/// Mean watts of a profile.
pub fn mean_power(profile: &[PowerSample]) -> f64 {
    if profile.is_empty() {
        return 0.0;
    }
    profile.iter().map(|s| s.watts).sum::<f64>() / profile.len() as f64
}

/// Energy efficiency in MFLOPS/W given total flops, runtime and mean power.
pub fn mflops_per_watt(total_flops: u64, seconds: f64, mean_watts: f64) -> f64 {
    (total_flops as f64 / seconds.max(1e-12)) / 1e6 / mean_watts.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::KernelRecord;

    fn busy_record(t0: f64, t1: f64) -> KernelRecord {
        KernelRecord {
            device: 0,
            label: "zgemm".into(),
            t_start: t0,
            t_end: t1,
            flops: 1,
            bytes: 0,
        }
    }

    #[test]
    fn idle_device_draws_idle_power() {
        let spec = GpuSpec::k20x();
        let p = power_profile(&[], &spec, 0, 10.0, 5);
        assert_eq!(p.len(), 5);
        for s in &p {
            assert!((s.watts - spec.idle_w).abs() < 1e-9);
        }
    }

    #[test]
    fn fully_busy_device_draws_busy_power() {
        let spec = GpuSpec::k20x();
        let p = power_profile(&[busy_record(0.0, 10.0)], &spec, 0, 10.0, 4);
        for s in &p {
            assert!((s.watts - spec.busy_w).abs() < 1e-9);
        }
    }

    #[test]
    fn half_busy_draws_half_way() {
        let spec = GpuSpec::k20x();
        let p = power_profile(&[busy_record(0.0, 5.0)], &spec, 0, 10.0, 1);
        let expected = spec.idle_w + (spec.busy_w - spec.idle_w) * 0.5;
        assert!((p[0].watts - expected).abs() < 1e-9);
    }

    #[test]
    fn efficiency_math() {
        // 1e12 flops in 1 s at 200 W → 5000 MFLOPS/W.
        let e = mflops_per_watt(1_000_000_000_000, 1.0, 200.0);
        assert!((e - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn mean_power_averages() {
        let profile =
            vec![PowerSample { t: 0.0, watts: 100.0 }, PowerSample { t: 1.0, watts: 200.0 }];
        assert!((mean_power(&profile) - 150.0).abs() < 1e-12);
    }
}
