//! Kernel traces on the virtual timeline (the nvprof substitute).

use serde::{Deserialize, Serialize};

/// One kernel or transfer interval on a device timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Device index.
    pub device: usize,
    /// Kernel label (`zgemm`, `zgesv_nopiv`, `H-to-D`, ...).
    pub label: String,
    /// Start time (virtual seconds).
    pub t_start: f64,
    /// End time (virtual seconds).
    pub t_end: f64,
    /// Double-precision operations executed.
    pub flops: u64,
    /// Bytes moved (transfers).
    pub bytes: u64,
}

/// Aggregated view of a trace (per label).
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// `(label, total seconds, total flops, total bytes, count)` rows.
    pub rows: Vec<(String, f64, u64, u64, usize)>,
}

impl TraceSummary {
    /// Builds the per-label aggregate of a record list.
    pub fn from_records(records: &[KernelRecord]) -> Self {
        let mut rows: Vec<(String, f64, u64, u64, usize)> = Vec::new();
        for r in records {
            match rows.iter_mut().find(|(l, ..)| *l == r.label) {
                Some(row) => {
                    row.1 += r.t_end - r.t_start;
                    row.2 += r.flops;
                    row.3 += r.bytes;
                    row.4 += 1;
                }
                None => rows.push((r.label.clone(), r.t_end - r.t_start, r.flops, r.bytes, 1)),
            }
        }
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        TraceSummary { rows }
    }

    /// Renders a compact ASCII activity chart per device over the horizon
    /// (Fig. 12(b)-style): one row per device, `█` = compute, `▒` =
    /// transfer, space = idle.
    pub fn activity_chart(records: &[KernelRecord], n_devices: usize, width: usize) -> String {
        let horizon = records.iter().map(|r| r.t_end).fold(0.0, f64::max).max(1e-12);
        let mut out = String::new();
        for dev in 0..n_devices {
            let mut row = vec![' '; width];
            for r in records.iter().filter(|r| r.device == dev) {
                let a = ((r.t_start / horizon) * width as f64) as usize;
                let b = (((r.t_end / horizon) * width as f64).ceil() as usize).min(width);
                let ch = if r.flops > 0 { '█' } else { '▒' };
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    if *cell == ' ' || ch == '█' {
                        *cell = ch;
                    }
                }
            }
            out.push_str(&format!("GPU{dev} |{}|\n", row.iter().collect::<String>()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(device: usize, label: &str, t0: f64, t1: f64, flops: u64) -> KernelRecord {
        KernelRecord { device, label: label.into(), t_start: t0, t_end: t1, flops, bytes: 0 }
    }

    #[test]
    fn summary_aggregates_by_label() {
        let records = vec![
            rec(0, "zgemm", 0.0, 1.0, 100),
            rec(0, "zgemm", 1.0, 3.0, 200),
            rec(1, "zgesv_nopiv", 0.0, 0.5, 50),
        ];
        let s = TraceSummary::from_records(&records);
        assert_eq!(s.rows.len(), 2);
        let gemm = s.rows.iter().find(|r| r.0 == "zgemm").unwrap();
        assert!((gemm.1 - 3.0).abs() < 1e-12);
        assert_eq!(gemm.2, 300);
        assert_eq!(gemm.4, 2);
    }

    #[test]
    fn chart_marks_busy_cells() {
        let records = vec![rec(0, "zgemm", 0.0, 1.0, 10)];
        let chart = TraceSummary::activity_chart(&records, 2, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('█'));
        assert!(!lines[1].contains('█'));
    }
}
