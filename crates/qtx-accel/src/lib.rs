//! # qtx-accel — simulated accelerator runtime
//!
//! The paper runs SplitSolve on NVIDIA K20X GPUs (Table I) through
//! cuBLAS/MAGMA kernels, measures per-kernel activity with nvprof
//! (Fig. 12(b)) and power with the machine/GPU sensors (Fig. 12(a)). No
//! GPU exists in this environment, so this crate provides the documented
//! substitution: a **virtual accelerator runtime**. Real numerics execute
//! on host threads, while every logical kernel reports its deterministic
//! FLOP/byte counts to a per-device virtual clock driven by a cost model
//! calibrated to the K20X. The runtime exposes
//!
//! * per-device kernel traces (start/end on the virtual timeline) — the
//!   Fig. 12(b) activity plot,
//! * device memory accounting — the "minimum number of GPUs that can
//!   accommodate the desired nanostructure" placement rule (§3.C),
//! * a utilization-driven power model — the Fig. 12(a) profiles and the
//!   MFLOPS/W numbers of §5.E.

pub mod device;
pub mod power;
pub mod trace;

pub use device::{AccelRuntime, Device, GpuSpec, KernelClass};
pub use power::{power_profile, PowerModel, PowerSample};
pub use trace::{KernelRecord, TraceSummary};
