//! Gated 1-D electrostatics for FET self-consistency (Fig. 1(a)/(c)).
//!
//! Along the transport axis the gate-all-around / double-gate geometry is
//! captured by the classic screened 1-D MOS equation
//!
//! ```text
//! −V''(x) + (V(x) − V_g) / λ² · χ_gate(x) = ρ̃(x)
//! ```
//!
//! where `λ` is the natural screening length of the geometry
//! (`λ² ≈ ε_ch/ε_ox · t_ch·t_ox` for thin bodies) and `χ_gate` selects the
//! gated section. Source/drain ends are pinned by the contact potentials.

use crate::fd::cg_solve;

/// Gate stack description for the 1-D screened Poisson equation.
#[derive(Debug, Clone)]
pub struct GateSpec {
    /// Gate start (node index).
    pub start: usize,
    /// Gate end (exclusive node index).
    pub end: usize,
    /// Gate potential (V), already including the work-function offset.
    pub vg: f64,
    /// Screening length λ (nm).
    pub lambda: f64,
}

/// Solves the screened 1-D Poisson equation with Dirichlet contacts.
///
/// `rho` is the net charge forcing (q/ε-scaled), `v_s`/`v_d` the contact
/// potentials. Returns the potential at every node.
pub fn gated_poisson_1d(
    rho: &[f64],
    dx: f64,
    gate: &GateSpec,
    v_s: f64,
    v_d: f64,
    tol: f64,
) -> Vec<f64> {
    let n = rho.len();
    assert!(gate.end <= n && gate.start < gate.end, "gate window out of range");
    let h2 = dx * dx;
    let kappa = 1.0 / (gate.lambda * gate.lambda);
    // Operator: (−∇² + κ·χ)v ; SPD, solved with CG.
    let apply = |v: &[f64], out: &mut [f64]| {
        for i in 0..n {
            let left = if i > 0 { v[i - 1] } else { 0.0 };
            let right = if i + 1 < n { v[i + 1] } else { 0.0 };
            let mut acc = (2.0 * v[i] - left - right) / h2;
            if i >= gate.start && i < gate.end {
                acc += kappa * v[i];
            }
            out[i] = acc;
        }
    };
    let mut b = rho.to_vec();
    // Contact Dirichlet terms enter the RHS of the first/last rows.
    b[0] += v_s / h2;
    b[n - 1] += v_d / h2;
    // Gate forcing.
    for (i, bi) in b.iter_mut().enumerate() {
        if i >= gate.start && i < gate.end {
            *bi += kappa * gate.vg;
        }
    }
    let mut v = vec![0.0; n];
    cg_solve(apply, &b, &mut v, tol, 20 * n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_pulls_channel_to_vg() {
        let n = 60;
        let gate = GateSpec { start: 20, end: 40, vg: 0.8, lambda: 0.8 };
        let v = gated_poisson_1d(&vec![0.0; n], 0.5, &gate, 0.0, 0.0, 1e-12);
        // Mid-channel potential approaches Vg (strong screening).
        assert!((v[30] - 0.8).abs() < 0.05, "v_mid = {}", v[30]);
        // Contacts stay near their boundary values.
        assert!(v[0].abs() < 0.1);
        assert!(v[n - 1].abs() < 0.1);
    }

    #[test]
    fn gate_zero_reduces_to_plain_poisson() {
        let n = 40;
        let gate = GateSpec { start: 15, end: 25, vg: 0.0, lambda: 1.0 };
        let v = gated_poisson_1d(&vec![0.0; n], 0.5, &gate, 0.3, 0.3, 1e-12);
        // Everything relaxes between the contacts and the grounded gate.
        for vi in &v {
            assert!(*vi <= 0.3 + 1e-9 && *vi >= -1e-9);
        }
    }

    #[test]
    fn drain_bias_tilts_profile() {
        let n = 50;
        let gate = GateSpec { start: 20, end: 30, vg: 0.5, lambda: 1.0 };
        let v = gated_poisson_1d(&vec![0.0; n], 0.5, &gate, 0.0, 0.6, 1e-12);
        assert!(v[n - 2] > v[1], "drain side must sit higher");
    }

    #[test]
    fn charge_bumps_potential() {
        let n = 30;
        let gate = GateSpec { start: 10, end: 20, vg: 0.0, lambda: 5.0 };
        let mut rho = vec![0.0; n];
        rho[15] = 1.0;
        let v1 = gated_poisson_1d(&rho, 0.5, &gate, 0.0, 0.0, 1e-12);
        let v0 = gated_poisson_1d(&vec![0.0; n], 0.5, &gate, 0.0, 0.0, 1e-12);
        assert!(v1[15] > v0[15], "positive charge raises the local potential");
    }
}
