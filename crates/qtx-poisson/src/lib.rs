//! # qtx-poisson — finite-difference Poisson solvers
//!
//! OMEN is "basically a Schrödinger-Poisson solver with open boundary
//! conditions" (§4): every self-consistent iteration feeds the transport
//! charge back into the electrostatic potential. This crate provides the
//! electrostatics substrate: 1-D and 2-D finite-difference Laplacians
//! with Dirichlet/Neumann/gate boundaries, a conjugate-gradient solver,
//! and the damped nonlinear iteration helper used by the device SCF loop.

pub mod fd;
pub mod gate;

pub use fd::{cg_solve, Poisson1D, Poisson2D};
pub use gate::{gated_poisson_1d, GateSpec};
