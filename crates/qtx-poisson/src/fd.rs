//! Finite-difference Laplacians and a conjugate-gradient solver.
//!
//! Units: lengths in nm, potentials in V, charge densities pre-scaled by
//! `q/ε` so the equation reads `−∇²V = ρ̃` (the scaling happens in the
//! device driver where the material permittivity is known).

/// 1-D Poisson problem on a uniform grid.
#[derive(Debug, Clone)]
pub struct Poisson1D {
    /// Grid spacing (nm).
    pub dx: f64,
    /// Number of interior nodes.
    pub n: usize,
    /// Dirichlet value at the left boundary, `None` = Neumann (zero flux).
    pub left: Option<f64>,
    /// Dirichlet value at the right boundary, `None` = Neumann.
    pub right: Option<f64>,
}

impl Poisson1D {
    /// Solves `−V'' = rho` and returns the potential on the grid.
    pub fn solve(&self, rho: &[f64]) -> Vec<f64> {
        assert_eq!(rho.len(), self.n);
        // Thomas algorithm on the tridiagonal FD matrix.
        let n = self.n;
        let h2 = self.dx * self.dx;
        let a = vec![-1.0; n]; // sub-diagonal
        let mut b = vec![2.0; n]; // diagonal
        let c = vec![-1.0; n]; // super-diagonal
        let mut d: Vec<f64> = rho.iter().map(|r| r * h2).collect();
        match self.left {
            Some(v) => d[0] += v,
            None => b[0] = 1.0, // zero-flux: V_0 = V_1 ⇒ (V0 − V1) term only
        }
        match self.right {
            Some(v) => d[n - 1] += v,
            None => b[n - 1] = 1.0,
        }
        // Forward elimination.
        for i in 1..n {
            let w = a[i] / b[i - 1];
            b[i] -= w * c[i - 1];
            d[i] -= w * d[i - 1];
        }
        let mut v = vec![0.0; n];
        v[n - 1] = d[n - 1] / b[n - 1];
        for i in (0..n - 1).rev() {
            v[i] = (d[i] - c[i] * v[i + 1]) / b[i];
        }
        v
    }
}

/// 2-D Poisson problem on a uniform tensor grid (5-point stencil),
/// Dirichlet on cells listed in `dirichlet`, Neumann elsewhere.
#[derive(Debug, Clone)]
pub struct Poisson2D {
    /// Grid spacings (nm).
    pub dx: f64,
    /// Grid spacing along y.
    pub dy: f64,
    /// Interior nodes along x.
    pub nx: usize,
    /// Interior nodes along y.
    pub ny: usize,
    /// Fixed-potential nodes `(ix, iy, value)` (gate contacts).
    pub dirichlet: Vec<(usize, usize, f64)>,
}

impl Poisson2D {
    fn idx(&self, i: usize, j: usize) -> usize {
        j * self.nx + i
    }

    /// Applies the (negative) Laplacian with Neumann boundaries.
    fn apply_raw(&self, v: &[f64], out: &mut [f64]) {
        let (nx, ny) = (self.nx, self.ny);
        let (ax, ay) = (1.0 / (self.dx * self.dx), 1.0 / (self.dy * self.dy));
        for j in 0..ny {
            for i in 0..nx {
                let c = v[self.idx(i, j)];
                let xl = if i > 0 { v[self.idx(i - 1, j)] } else { c };
                let xr = if i + 1 < nx { v[self.idx(i + 1, j)] } else { c };
                let yd = if j > 0 { v[self.idx(i, j - 1)] } else { c };
                let yu = if j + 1 < ny { v[self.idx(i, j + 1)] } else { c };
                out[self.idx(i, j)] = ax * (2.0 * c - xl - xr) + ay * (2.0 * c - yd - yu);
            }
        }
    }

    /// Solves `−∇²V = rho` by conjugate gradients, enforcing the Dirichlet
    /// nodes through the symmetric lift-and-project construction: solve
    /// `P·L·P·u = P·(b − L·x₀)` with `x₀` the Dirichlet lift and `P` the
    /// projector zeroing constrained entries, then return `u + x₀`. This
    /// keeps the CG operator symmetric positive definite.
    pub fn solve(&self, rho: &[f64], tol: f64, max_iter: usize) -> Vec<f64> {
        assert_eq!(rho.len(), self.nx * self.ny);
        assert!(!self.dirichlet.is_empty(), "2-D solve needs at least one Dirichlet node");
        let n = rho.len();
        let mut fixed = vec![false; n];
        let mut x0 = vec![0.0; n];
        for &(i, j, val) in &self.dirichlet {
            fixed[self.idx(i, j)] = true;
            x0[self.idx(i, j)] = val;
        }
        let mut lx0 = vec![0.0; n];
        self.apply_raw(&x0, &mut lx0);
        let mut b: Vec<f64> = rho.iter().zip(&lx0).map(|(r, l)| r - l).collect();
        for (bi, &f) in b.iter_mut().zip(&fixed) {
            if f {
                *bi = 0.0;
            }
        }
        let mut u = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        cg_solve(
            |v, out| {
                scratch.copy_from_slice(v);
                for (s, &f) in scratch.iter_mut().zip(&fixed) {
                    if f {
                        *s = 0.0;
                    }
                }
                self.apply_raw(&scratch, out);
                for (o, &f) in out.iter_mut().zip(&fixed) {
                    if f {
                        *o = 0.0;
                    }
                }
            },
            &b,
            &mut u,
            tol,
            max_iter,
        );
        for i in 0..n {
            u[i] += x0[i];
            if fixed[i] {
                u[i] = x0[i];
            }
        }
        u
    }
}

/// Generic conjugate gradients for a matrix-free SPD operator.
pub fn cg_solve(
    mut apply: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> usize {
    let n = b.len();
    let mut r = vec![0.0; n];
    let mut ax = vec![0.0; n];
    apply(x, &mut ax);
    for i in 0..n {
        r[i] = b[i] - ax[i];
    }
    let mut p = r.clone();
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    let mut ap = vec![0.0; n];
    for it in 0..max_iter {
        if rs.sqrt() / b_norm < tol {
            return it;
        }
        apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-300 {
            return it;
        }
        let alpha = rs / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs;
        rs = rs_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    max_iter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirichlet_laplace_is_linear_ramp() {
        // −V'' = 0 with V(0)=0, V(L)=1 → linear profile.
        let p = Poisson1D { dx: 0.1, n: 21, left: Some(0.0), right: Some(1.0) };
        let v = p.solve(&[0.0; 21]);
        for (i, vi) in v.iter().enumerate() {
            let expected = (i + 1) as f64 / 22.0;
            assert!((vi - expected).abs() < 1e-10, "node {i}: {vi} vs {expected}");
        }
    }

    #[test]
    fn uniform_charge_gives_parabola() {
        // −V'' = 1, V(±) = 0 → V = x(L−x)/2 on the continuum.
        let n = 101;
        let dx = 1.0 / (n as f64 + 1.0);
        let p = Poisson1D { dx, n, left: Some(0.0), right: Some(0.0) };
        let v = p.solve(&vec![1.0; n]);
        let mid = v[n / 2];
        assert!((mid - 0.125).abs() < 1e-3, "mid = {mid} vs 1/8");
    }

    #[test]
    fn neumann_side_flattens_profile() {
        let p = Poisson1D { dx: 0.1, n: 30, left: None, right: Some(0.0) };
        let v = p.solve(&vec![0.5; 30]);
        // Zero-flux at the left: the first two nodes are nearly equal.
        assert!((v[0] - v[1]).abs() < 0.02 * v[0].abs().max(1e-12) + 5e-3);
        assert!(v[0] > v[29], "potential decays towards the grounded side");
    }

    #[test]
    fn poisson_2d_gate_pins_potential() {
        let mut dirichlet = Vec::new();
        for i in 0..8 {
            dirichlet.push((i, 0usize, 1.0)); // bottom gate at 1 V
            dirichlet.push((i, 7usize, 0.0)); // top contact grounded
        }
        let p = Poisson2D { dx: 0.5, dy: 0.5, nx: 8, ny: 8, dirichlet };
        let v = p.solve(&vec![0.0; 64], 1e-10, 2000);
        // Monotonic decay from the 1 V gate to the 0 V contact.
        let col = |j: usize| v[j * 8 + 4];
        assert!((col(0) - 1.0).abs() < 1e-8);
        assert!((col(7) - 0.0).abs() < 1e-8);
        for j in 1..8 {
            assert!(col(j) <= col(j - 1) + 1e-9, "profile must decay, col {j}");
        }
    }

    #[test]
    fn cg_solves_identity() {
        let b = vec![1.0, 2.0, 3.0];
        let mut x = vec![0.0; 3];
        let iters = cg_solve(|v, out| out.copy_from_slice(v), &b, &mut x, 1e-12, 10);
        assert!(iters <= 2);
        for (a, e) in x.iter().zip(&b) {
            assert!((a - e).abs() < 1e-10);
        }
    }
}
