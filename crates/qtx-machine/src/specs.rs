//! Table I: technical specifications of Piz Daint and Titan.

use qtx_accel::GpuSpec;

/// One hybrid machine.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Machine name.
    pub name: &'static str,
    /// Hybrid (CPU+GPU) node count.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// CPU model string.
    pub cpu_model: &'static str,
    /// Total CPU cores.
    pub cores: usize,
    /// CPU double-precision peak per node (GFlop/s).
    pub cpu_gflops_per_node: f64,
    /// GPU double-precision peak per node (GFlop/s).
    pub gpu_gflops_per_node: f64,
    /// Fraction of CPU peak sustained by the OBC kernels.
    pub cpu_efficiency: f64,
}

impl MachineSpec {
    /// GPU model backing this machine.
    pub fn gpu(&self) -> GpuSpec {
        if self.name == "Titan" {
            GpuSpec::k20x_titan()
        } else {
            GpuSpec::k20x()
        }
    }

    /// Node peak as Table I prints it (CPU + GPU GFlop/s).
    pub fn node_peak_gflops(&self) -> f64 {
        self.cpu_gflops_per_node + self.gpu_gflops_per_node
    }

    /// Machine double-precision peak (PFlop/s).
    pub fn machine_peak_pflops(&self) -> f64 {
        self.nodes as f64 * self.node_peak_gflops() / 1e6
    }
}

/// Cray-XC30 Piz Daint at CSCS (Table I, left column).
pub const PIZ_DAINT: MachineSpec = MachineSpec {
    name: "Piz Daint",
    nodes: 5272,
    gpus_per_node: 1,
    cpu_model: "Intel Xeon E5-2670",
    cores: 42176,
    cpu_gflops_per_node: 166.4,
    gpu_gflops_per_node: 1311.0,
    cpu_efficiency: 0.55,
};

/// Cray-XK7 Titan at ORNL (Table I, right column). "On Titan at least
/// half of the CPUs remain idle" (§5.A) — reflected in the lower CPU
/// efficiency.
pub const TITAN: MachineSpec = MachineSpec {
    name: "Titan",
    nodes: 18688,
    gpus_per_node: 1,
    cpu_model: "AMD Opteron 6274",
    cores: 299008,
    cpu_gflops_per_node: 134.4,
    gpu_gflops_per_node: 1311.0,
    cpu_efficiency: 0.35,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_numbers() {
        assert_eq!(PIZ_DAINT.nodes, 5272);
        assert_eq!(TITAN.nodes, 18688);
        assert_eq!(PIZ_DAINT.cores, 42176);
        assert_eq!(TITAN.cores, 299008);
        assert!((PIZ_DAINT.node_peak_gflops() - 1477.4).abs() < 0.1);
        assert!((TITAN.node_peak_gflops() - 1445.4).abs() < 0.1);
    }

    #[test]
    fn titan_peak_is_about_27_pflops() {
        let p = TITAN.machine_peak_pflops();
        assert!((26.0..28.0).contains(&p), "Titan peak {p} PFlop/s");
    }

    #[test]
    fn titan_gpu_is_slower_at_lu() {
        assert!(TITAN.gpu().lu_efficiency < PIZ_DAINT.gpu().lu_efficiency);
    }
}
