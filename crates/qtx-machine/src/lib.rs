//! # qtx-machine — machine models and paper-scale experiment replays
//!
//! The paper's evaluation ran on Cray-XC30 Piz Daint and Cray-XK7 Titan
//! (Table I) at up to 18 564 hybrid nodes. Those machines are the
//! documented substitution target of this crate: because "the number of
//! floating point operations involved in SplitSolve is deterministic and
//! can be accurately estimated" (§5.B), every timing experiment in the
//! paper reduces to a FLOP ledger plus calibrated device rates. This crate
//! carries
//!
//! * [`specs`] — Table I as data;
//! * [`perfmodel`] — the deterministic per-energy-point FLOP/time model of
//!   FEAST, SplitSolve, the MUMPS-like baseline and shift-and-invert,
//!   cross-validated against the real (small-scale) kernels in tests;
//! * [`experiments`] — the replays generating Figs. 7, 8, 11, 12 and
//!   Tables II, III, with the paper's headline numbers asserted in tests.

pub mod experiments;
pub mod perfmodel;
pub mod specs;

pub use experiments::{
    fig11_table23, fig12_power, fig7_strong, fig7_weak, fig8_comparison, PowerReport, ScalingRow,
    SolverComparison,
};
pub use perfmodel::{DeadlineModel, PaperDevice, PerfModel, MAX_BATCH_POINTS};
pub use specs::{MachineSpec, PIZ_DAINT, TITAN};
