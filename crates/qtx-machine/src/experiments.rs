//! Paper-scale experiment replays: Figs. 7, 8, 11, 12 and Tables II, III.
//!
//! Every function returns the data series of one published plot/table,
//! computed from the deterministic performance model. Tests pin the
//! headline claims: >50× vs shift-and-invert+MUMPS, 6–16× vs MUMPS alone,
//! ≈97% strong-scaling efficiency at 18 564 nodes, 12.8 → 15.01 PFlop/s
//! via the Hermitian kernel, 7.6 MW / 1975 MFLOPS/W / 146 W / 5396
//! MFLOPS/W power figures.

use crate::perfmodel::{PaperDevice, PerfModel};
use crate::specs::TITAN;
use serde::{Deserialize, Serialize};

/// One row of a scaling table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Hybrid node (or GPU) count.
    pub nodes: usize,
    /// Wall time (s).
    pub time_s: f64,
    /// Energy points per node (weak scaling) or total points (strong).
    pub points_per_node: f64,
    /// Normalized time per energy point (s).
    pub time_per_point: f64,
    /// Parallel efficiency vs the smallest configuration (%).
    pub efficiency_pct: f64,
    /// Sustained performance (PFlop/s) when applicable.
    pub pflops: f64,
}

/// Fig. 7(a): SplitSolve weak scaling on Piz Daint, 2560 atoms per GPU.
pub fn fig7_weak(gpu_counts: &[usize]) -> Vec<ScalingRow> {
    let m = PerfModel::piz_daint();
    let base = {
        let dev = PaperDevice::utb_weak_unit(2);
        m.splitsolve_seconds(&dev, 2, false)
    };
    gpu_counts
        .iter()
        .map(|&g| {
            let dev = PaperDevice::utb_weak_unit(g);
            let t = m.splitsolve_seconds(&dev, g, false);
            ScalingRow {
                nodes: g,
                time_s: t,
                points_per_node: 1.0,
                time_per_point: t,
                efficiency_pct: 100.0 * base / t,
                pflops: 0.0,
            }
        })
        .collect()
}

/// Fig. 7(b): SplitSolve strong scaling, 10 240 atoms (`N_SS` = 122 880).
pub fn fig7_strong(gpu_counts: &[usize]) -> Vec<ScalingRow> {
    let m = PerfModel::piz_daint();
    let dev = PaperDevice::utb_strong_10240();
    let base_gpus = gpu_counts.first().copied().unwrap_or(2);
    let base = m.splitsolve_seconds(&dev, base_gpus, false) * base_gpus as f64;
    gpu_counts
        .iter()
        .map(|&g| {
            let t = m.splitsolve_seconds(&dev, g, false);
            ScalingRow {
                nodes: g,
                time_s: t,
                points_per_node: 1.0,
                time_per_point: t,
                efficiency_pct: 100.0 * base / (t * g as f64),
                pflops: 0.0,
            }
        })
        .collect()
}

/// One algorithm column of Fig. 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverComparison {
    /// Algorithm label.
    pub algorithm: String,
    /// OBC seconds per energy point.
    pub obc_s: f64,
    /// Eq. 5 solve seconds per energy point.
    pub solve_s: f64,
    /// Total (overlap-aware) seconds.
    pub total_s: f64,
}

/// Fig. 8: the three-algorithm comparison on one device / node count.
pub fn fig8_comparison(dev: &PaperDevice, n_nodes: usize) -> Vec<SolverComparison> {
    let m = PerfModel::titan();
    let si = m.shift_invert_seconds(dev);
    let feast = m.feast_seconds(dev, n_nodes);
    let mumps = m.mumps_seconds(dev, n_nodes);
    let split = m.splitsolve_seconds(dev, n_nodes * m.machine.gpus_per_node, false);
    vec![
        SolverComparison {
            algorithm: "shift-and-invert + MUMPS".into(),
            obc_s: si,
            solve_s: mumps,
            total_s: si + mumps, // sequential: no overlap
        },
        SolverComparison {
            algorithm: "FEAST + MUMPS".into(),
            obc_s: feast,
            solve_s: mumps,
            total_s: feast + mumps, // both on CPUs: no overlap
        },
        SolverComparison {
            algorithm: "FEAST + SplitSolve".into(),
            obc_s: feast,
            solve_s: split,
            total_s: split.max(feast), // CPU OBC hides behind GPU solve
        },
    ]
}

/// Table II / Fig. 11(a): OMEN weak scaling on Titan. Returns the measured
/// paper rows side by side with the model (deterministic jitter stands in
/// for the grid-size variation the paper describes).
pub fn fig11_weak(node_counts: &[usize]) -> Vec<ScalingRow> {
    let m = PerfModel::titan();
    let dev = PaperDevice::utbfet_23040();
    let t_point = m.feast_splitsolve_seconds(&dev, 4, false);
    node_counts
        .iter()
        .enumerate()
        .map(|(i, &nodes)| {
            // ~13–14 points per node with grid-driven variation (the
            // energy grid "is not an input parameter").
            let jitter: [f64; 6] = [14.1, 13.4, 13.8, 13.8, 13.3, 12.9];
            // Table II's "Avg. E/node" is the per-4-node-domain workload:
            // the measured wall times satisfy t ≈ (E/node)·(time/E).
            let ppn = jitter[i % jitter.len()];
            let time = ppn.ceil() * t_point;
            ScalingRow {
                nodes,
                time_s: time,
                points_per_node: ppn,
                time_per_point: time / ppn,
                efficiency_pct: 100.0,
                pflops: 0.0,
            }
        })
        .collect()
}

/// Table III / Fig. 11(b): OMEN strong scaling on Titan, 59 908 energy
/// points, 21 momentum points, 4-node spatial domains. The last row
/// repeats the 18 564-node run with the §5.E Hermitian kernel (the
/// 15.01 PFlop/s entry).
pub fn fig11_table23(node_counts: &[usize]) -> Vec<ScalingRow> {
    let m = PerfModel::titan();
    let dev = PaperDevice::utbfet_23040();
    let total_points = 59_908f64;
    let mut rows = Vec::new();
    let mut base: Option<f64> = None;
    for (hermitian, counts) in [(false, node_counts), (true, &node_counts[node_counts.len() - 1..])]
    {
        for &nodes in counts {
            let t_point = m.feast_splitsolve_seconds(&dev, 4, hermitian);
            let groups = (nodes / 4).max(1) as f64;
            // Ceil-distribution of points over groups plus a small
            // tree-collective overhead per doubling.
            let comm = 2.0 * (nodes as f64).log2();
            let time = (total_points / groups).ceil() * t_point + comm;
            let flops = m.flops_per_point(&dev, hermitian) * total_points;
            let pflops = flops / time / 1e15;
            let eff = match base {
                None => {
                    base = Some(time * nodes as f64);
                    100.0
                }
                Some(b) => 100.0 * b / (time * nodes as f64),
            };
            rows.push(ScalingRow {
                nodes,
                time_s: time,
                points_per_node: total_points / nodes as f64,
                time_per_point: t_point,
                efficiency_pct: if hermitian { f64::NAN } else { eff },
                pflops,
            });
        }
    }
    rows
}

/// Fig. 12(a) summary: power and energy-efficiency figures of the
/// 15.01 PFlop/s run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerReport {
    /// Average machine power (MW).
    pub machine_avg_mw: f64,
    /// Peak machine power (MW).
    pub machine_peak_mw: f64,
    /// Average GPU power (W).
    pub gpu_avg_w: f64,
    /// Machine-level efficiency (MFLOPS/W).
    pub machine_mflops_per_w: f64,
    /// GPU-level efficiency (MFLOPS/W).
    pub gpu_mflops_per_w: f64,
    /// Sustained performance of the run (PFlop/s).
    pub sustained_pflops: f64,
}

/// Computes the Fig. 12(a) power report for the tuned 18 564-node run.
pub fn fig12_power() -> PowerReport {
    let rows = fig11_table23(&[18_564]);
    let tuned = rows.last().expect("tuned row");
    let gpu = TITAN.gpu();
    // GPU utilization during the run: compute fraction of the wall time.
    let util = 0.82;
    let gpu_avg_w = gpu.idle_w + (gpu.busy_w - gpu.idle_w) * util;
    // Node draw: GPU + CPU/board base; facility overhead on top (pumps,
    // blowers, line losses — §5.E's description of the machine profile).
    let node_base_w = 200.0;
    let facility = 0.18;
    let it_power_w = TITAN.nodes as f64 * (gpu_avg_w + node_base_w);
    let machine_avg_w = it_power_w * (1.0 + facility);
    let machine_peak_w = machine_avg_w * 1.16; // transient peaks (8.8/7.6)
    let total_flops = tuned.pflops * 1e15 * tuned.time_s;
    let gpu_flops = total_flops * 0.95; // 95% of the work on GPUs (§5.E)
    PowerReport {
        machine_avg_mw: machine_avg_w / 1e6,
        machine_peak_mw: machine_peak_w / 1e6,
        gpu_avg_w,
        machine_mflops_per_w: tuned.pflops * 1e15 / 1e6 / machine_avg_w,
        gpu_mflops_per_w: gpu_flops / tuned.time_s / 1e6 / (TITAN.nodes as f64 * gpu_avg_w),
        sustained_pflops: tuned.pflops,
    }
}

/// Paper values of Table II for side-by-side printing.
pub const TABLE2_PAPER: [(usize, f64, f64, f64); 6] = [
    (588, 1277.0, 14.1, 90.8),
    (1176, 1197.0, 13.4, 89.0),
    (2352, 1281.0, 13.8, 92.7),
    (4704, 1213.0, 13.8, 87.7),
    (9408, 1204.0, 13.3, 90.3),
    (18564, 1130.0, 12.9, 87.5),
];

/// Paper values of Table III (last line = tuned 15.01 PFlop/s run).
pub const TABLE3_PAPER: [(usize, f64, f64, f64); 7] = [
    (756, 26975.0, 100.0, 0.54),
    (1512, 13593.0, 99.2, 1.06),
    (3024, 6806.0, 99.1, 2.12),
    (6048, 3415.0, 98.7, 4.23),
    (12096, 1711.0, 98.5, 8.45),
    (18564, 1130.0, 97.3, 12.8),
    (18564, 912.5, f64::NAN, 15.01),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_weak_efficiency_drops_with_spikes() {
        // Fig. 7(a): ~30 s on 2 GPUs growing to ~70 s on 32 (spike cost).
        let rows = fig7_weak(&[2, 4, 8, 16, 32]);
        assert!((20.0..45.0).contains(&rows[0].time_s), "2-GPU time {}", rows[0].time_s);
        assert!((50.0..95.0).contains(&rows[4].time_s), "32-GPU time {}", rows[4].time_s);
        assert!(rows[4].efficiency_pct < 70.0, "efficiency must drop");
        for w in rows.windows(2) {
            assert!(w[1].time_s > w[0].time_s, "weak time grows with spikes");
        }
    }

    #[test]
    fn fig7_strong_saturates_at_high_gpu_counts() {
        // Fig. 7(b): poor strong scaling beyond 8 GPUs for this size.
        let rows = fig7_strong(&[2, 4, 8, 16]);
        assert!(rows[1].time_s < rows[0].time_s, "some speedup 2→4");
        assert!(
            rows[3].efficiency_pct < 55.0,
            "16-GPU efficiency must collapse: {}",
            rows[3].efficiency_pct
        );
    }

    #[test]
    fn fig8_speedups_match_paper_claims() {
        for (dev, nodes) in [(PaperDevice::utbfet_23040(), 4), (PaperDevice::nwfet_55488(), 16)] {
            let c = fig8_comparison(&dev, nodes);
            let si_mumps = c[0].total_s;
            let feast_mumps = c[1].total_s;
            let feast_split = c[2].total_s;
            let total_speedup = si_mumps / feast_split;
            let split_vs_mumps = c[1].solve_s / c[2].solve_s;
            assert!(
                total_speedup > 50.0,
                "{}: SI+MUMPS → F+SS speedup {total_speedup} (paper: >50)",
                dev.label
            );
            assert!(
                (5.0..30.0).contains(&split_vs_mumps),
                "{}: SplitSolve vs MUMPS {split_vs_mumps} (paper: 6–16)",
                dev.label
            );
            assert!(feast_mumps < si_mumps, "FEAST must beat shift-and-invert");
        }
    }

    #[test]
    fn nwfet_mumps_takes_tens_of_minutes() {
        // §5.C: "the time per energy point with FEAST+MUMPS is in the
        // order of 30 minutes on 16 nodes".
        let c = fig8_comparison(&PaperDevice::nwfet_55488(), 16);
        let feast_mumps = c[1].total_s;
        assert!(
            (900.0..3600.0).contains(&feast_mumps),
            "FEAST+MUMPS {feast_mumps} s vs paper ~1800 s"
        );
    }

    #[test]
    fn table3_strong_scaling_efficiency() {
        let nodes: Vec<usize> = TABLE3_PAPER[..6].iter().map(|r| r.0).collect();
        let rows = fig11_table23(&nodes);
        // Efficiency at 18 564 nodes ≥ 95% (paper: 97.3%).
        let last = &rows[5];
        assert!(last.efficiency_pct > 95.0, "efficiency {}", last.efficiency_pct);
        // Sustained performance in the paper's ballpark (12.8 PFlop/s).
        assert!((9.0..17.0).contains(&last.pflops), "sustained {}", last.pflops);
        // Time at full machine within 2× of the measured 1130 s.
        assert!((600.0..2300.0).contains(&last.time_s), "time {}", last.time_s);
    }

    #[test]
    fn tuned_hermitian_run_beats_the_lu_run() {
        let rows = fig11_table23(&[18_564]);
        let lu = &rows[0];
        let tuned = &rows[1];
        assert!(tuned.time_s < lu.time_s, "zhesv run faster: {} vs {}", tuned.time_s, lu.time_s);
        assert!(tuned.pflops > lu.pflops, "PFlop/s rises: {} vs {}", tuned.pflops, lu.pflops);
        assert!((10.0..18.0).contains(&tuned.pflops), "tuned {} vs paper 15.01", tuned.pflops);
    }

    #[test]
    fn weak_scaling_time_per_point_is_flat() {
        let nodes: Vec<usize> = TABLE2_PAPER.iter().map(|r| r.0).collect();
        let rows = fig11_weak(&nodes);
        let t0 = rows[0].time_per_point;
        for r in &rows {
            let dev = (r.time_per_point - t0).abs() / t0;
            assert!(dev < 0.06, "time/point varies by {dev} (paper: ~5%)");
        }
    }

    #[test]
    fn power_report_matches_fig12() {
        let p = fig12_power();
        assert!((6.5..9.0).contains(&p.machine_avg_mw), "avg {} MW vs 7.6", p.machine_avg_mw);
        assert!(p.machine_peak_mw > p.machine_avg_mw);
        assert!((120.0..165.0).contains(&p.gpu_avg_w), "GPU {} W vs 146", p.gpu_avg_w);
        assert!(
            (1500.0..2600.0).contains(&p.machine_mflops_per_w),
            "machine {} MFLOPS/W vs 1975",
            p.machine_mflops_per_w
        );
        assert!(
            (4000.0..7000.0).contains(&p.gpu_mflops_per_w),
            "GPU {} MFLOPS/W vs 5396",
            p.gpu_mflops_per_w
        );
    }
}
