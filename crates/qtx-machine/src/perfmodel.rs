//! Deterministic FLOP/time model of the transport kernels.
//!
//! §5.B: "the number of floating point operations (FLOPs) involved in
//! SplitSolve is deterministic and can be accurately estimated". The
//! ledger below mirrors, operation for operation, what the real kernels in
//! `qtx-solver`/`qtx-obc` account at runtime (a test cross-checks the two),
//! then converts FLOPs to seconds through the Table I device rates.
//!
//! Paper-scale inputs: the production basis carries **12 orbitals per
//! atom** (both headline structures satisfy `N_SS = 12 × N_A`: UTBFET
//! 276 480 = 12 × 23 040 and NWFET 665 856 = 12 × 55 488) and couples
//! `NBW = 2` unit cells, so the folded superblocks double the cell
//! orbital count.

use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};

/// A paper-scale device described by its matrix dimensions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperDevice {
    /// Label used in the printed tables.
    pub label: String,
    /// Atom count.
    pub atoms: usize,
    /// Orbitals per atom (12 in the production 3SP basis).
    pub orb_per_atom: usize,
    /// Transport unit cells.
    pub cells: usize,
    /// Interaction range in cells.
    pub nbw: usize,
    /// Injected right-hand-side columns per energy point.
    pub nrhs: usize,
    /// 3-D structures have real-symmetric `A = E·S − H` (§3.B), quartering
    /// the arithmetic relative to complex; 1-D/2-D are complex Hermitian.
    pub real_symmetric: bool,
}

impl PaperDevice {
    /// The 2-D UTBFET of Figs. 8(a)/11 and Tables II/III: t_body = 5 nm,
    /// L = 78.2 nm, 23 040 atoms, `N_SS` = 276 480.
    pub fn utbfet_23040() -> Self {
        PaperDevice {
            label: "Si UTBFET 23040 atoms".into(),
            atoms: 23_040,
            orb_per_atom: 12,
            cells: 144,
            nbw: 2,
            nrhs: 64,
            real_symmetric: false,
        }
    }

    /// The 3-D NWFET of Figs. 8(b)/10: d = 3.2 nm, L = 104.3 nm, 55 488
    /// atoms, `N_SS` = 665 856.
    pub fn nwfet_55488() -> Self {
        PaperDevice {
            label: "Si NWFET 55488 atoms".into(),
            atoms: 55_488,
            orb_per_atom: 12,
            cells: 192,
            nbw: 2,
            nrhs: 96,
            real_symmetric: true,
        }
    }

    /// Weak-scaling unit of Fig. 7(a): 2560 atoms per GPU
    /// (`N_SS = N_GPU × 30 720`).
    pub fn utb_weak_unit(n_gpu: usize) -> Self {
        PaperDevice {
            label: format!("UTB weak {n_gpu} GPUs"),
            atoms: 2560 * n_gpu,
            orb_per_atom: 12,
            cells: 16 * n_gpu,
            nbw: 2,
            nrhs: 48,
            real_symmetric: false,
        }
    }

    /// Strong-scaling structure of Fig. 7(b): 10 240 atoms,
    /// `N_SS` = 122 880.
    pub fn utb_strong_10240() -> Self {
        PaperDevice {
            label: "UTB strong 10240 atoms".into(),
            atoms: 10_240,
            orb_per_atom: 12,
            cells: 64,
            nbw: 2,
            nrhs: 48,
            real_symmetric: false,
        }
    }

    /// Total matrix dimension `N_SS`.
    pub fn nss(&self) -> usize {
        self.atoms * self.orb_per_atom
    }

    /// Orbitals per transport cell.
    pub fn cell_orbitals(&self) -> usize {
        self.nss() / self.cells
    }

    /// Folded superblock size (`NBW` cells per block).
    pub fn block_size(&self) -> usize {
        self.cell_orbitals() * self.nbw
    }

    /// Folded block count `n_B`.
    pub fn num_blocks(&self) -> usize {
        self.cells / self.nbw
    }

    /// Companion pencil size `NBC = 2·NBW·n`.
    pub fn nbc(&self) -> usize {
        2 * self.block_size()
    }

    /// Device memory footprint of `A` + `Q` in bytes. Symmetric storage
    /// keeps diagonal + upper blocks only; half of `Q` stays on the CPUs
    /// (§3.C), and real-symmetric 3-D structures store 8-byte entries.
    pub fn memory_bytes(&self) -> u64 {
        let s = self.block_size() as u64;
        let nb = self.num_blocks() as u64;
        let entry = if self.real_symmetric { 8 } else { 16 };
        // diag + upper (Hermitian/symmetric A) + Q/2 on device.
        (2 * nb * s * s + nb * s * s) * entry
    }
}

/// FLOP ledger + rate model for one machine.
#[derive(Debug, Clone)]
pub struct PerfModel {
    /// Host machine.
    pub machine: MachineSpec,
    /// FEAST integration points per circle.
    pub feast_np: usize,
    /// Synchronization/transfer seconds per SPIKE merge level on top of
    /// the spike FLOPs already in the ledger (the ledger itself produces
    /// the ~10 s/level of Fig. 7(a)).
    pub spike_level_seconds: f64,
    /// Fixed per-energy-point overhead (communication, injection
    /// assembly, reduced solves) in seconds.
    pub point_overhead_seconds: f64,
    /// MUMPS-like baseline: sustained fraction of node CPU peak ×
    /// parallel efficiency across nodes (sparse direct solvers scale
    /// poorly on BTD problems).
    pub mumps_efficiency: f64,
    /// Shift-and-invert baseline: usable nodes ("the difficulty to
    /// parallelize the shift-and-invert method", §3.A).
    pub shift_invert_nodes: f64,
}

impl PerfModel {
    /// Model of Titan.
    pub fn titan() -> Self {
        PerfModel {
            machine: crate::specs::TITAN.clone(),
            feast_np: 8,
            spike_level_seconds: 2.0,
            point_overhead_seconds: 6.0,
            mumps_efficiency: 0.2,
            shift_invert_nodes: 1.0,
        }
    }

    /// Model of Piz Daint.
    pub fn piz_daint() -> Self {
        PerfModel {
            machine: crate::specs::PIZ_DAINT.clone(),
            feast_np: 8,
            spike_level_seconds: 2.0,
            point_overhead_seconds: 5.0,
            mumps_efficiency: 0.2,
            shift_invert_nodes: 1.0,
        }
    }

    /// SplitSolve FLOPs per energy point, split `(gemm, factorization)`.
    ///
    /// Algorithm 1 per block: two `s³` GEMMs, one LU, one block
    /// back-substitution, run twice (first + last columns); plus the
    /// forward accumulation GEMM, the SPIKE corrections (2 GEMMs per block
    /// per level) and the `x = Q·(b′+z)` post-processing.
    pub fn splitsolve_flops(&self, dev: &PaperDevice, partitions: usize) -> (f64, f64) {
        let s = dev.block_size() as f64;
        let nb = dev.num_blocks() as f64;
        let m = dev.nrhs as f64;
        let levels = (partitions.max(1) as f64).log2().round();
        // Per block, per sweep: the A_{i,i+1}·X_{i+1} product and the
        // Q_i = −X_i·Q_{i−1} accumulation; two sweeps (first + last cols).
        let alg1_gemm = 2.0 * 2.0 * 8.0 * s * s * s;
        // SPIKE corrections: one GEMM per block per column set per level.
        let spike_gemm = 2.0 * levels * 8.0 * s * s * s;
        // Post-processing: x_i = [first|last]·(b′+z), one s×2s×m GEMM.
        let post_gemm = 8.0 * s * (2.0 * s) * m;
        let gemm = nb * (alg1_gemm + spike_gemm + post_gemm);
        // Per block, per sweep: one LU + one s-RHS back-substitution.
        let solve = nb * 2.0 * (8.0 / 3.0 * s * s * s + 8.0 * s * s * s);
        // Real-symmetric 3-D preprocessing runs in real arithmetic: 2
        // real flops per multiply-add instead of 8 (§3.B).
        let arith = if dev.real_symmetric { 0.25 } else { 1.0 };
        (gemm * arith, solve * arith)
    }

    /// Hermitian (`zhesv_nopiv`) variant of §5.E: factorization at half
    /// cost.
    pub fn splitsolve_flops_hermitian(&self, dev: &PaperDevice, partitions: usize) -> (f64, f64) {
        let (gemm, solve) = self.splitsolve_flops(dev, partitions);
        (gemm, solve * (4.0 / 3.0 + 8.0) / (8.0 / 3.0 + 8.0))
    }

    /// FEAST FLOPs per energy point (CPU side): `2·N_p` factorizations of
    /// the `nf`-sized polynomial + solves + Rayleigh–Ritz products.
    pub fn feast_flops(&self, dev: &PaperDevice) -> f64 {
        let nf = dev.block_size() as f64;
        let m0 = (nf / 8.0).max(64.0); // subspace for the annulus modes
        let n_solves = (2 * self.feast_np) as f64;
        n_solves * (8.0 / 3.0 * nf * nf * nf + 8.0 * nf * nf * m0)
            + 2.0 * 8.0 * nf * nf * m0 // projector application
            + 25.0 * m0 * m0 * m0 // reduced eigensolve
    }

    /// SplitSolve wall seconds per energy point on `n_gpu` accelerators
    /// (`hermitian` selects the §5.E kernel).
    pub fn splitsolve_seconds(&self, dev: &PaperDevice, n_gpu: usize, hermitian: bool) -> f64 {
        let partitions = (n_gpu / 2).max(1);
        let (gemm, solve) = if hermitian {
            self.splitsolve_flops_hermitian(dev, partitions)
        } else {
            self.splitsolve_flops(dev, partitions)
        };
        let gpu = self.machine.gpu();
        let peak = gpu.peak_gflops * 1e9 * n_gpu as f64;
        // zhesv_nopiv on Titan was additionally tuned (§5.E) — model the
        // tuned kernel at standard-LU efficiency parity.
        let lu_eff = if hermitian { gpu.lu_efficiency * 1.15 } else { gpu.lu_efficiency };
        let t_compute = gemm / (gpu.gemm_efficiency * peak) + solve / (lu_eff * peak);
        let levels = (partitions as f64).log2().round();
        t_compute + levels * self.spike_level_seconds + self.point_overhead_seconds
    }

    /// FEAST wall seconds per energy point on the CPUs of the same nodes.
    pub fn feast_seconds(&self, dev: &PaperDevice, n_nodes: usize) -> f64 {
        let rate =
            self.machine.cpu_gflops_per_node * 1e9 * self.machine.cpu_efficiency * n_nodes as f64;
        self.feast_flops(dev) / rate
    }

    /// Combined FEAST+SplitSolve time per energy point: the OBCs run on
    /// the CPUs concurrently with Step 1 on the GPUs, so the wall time is
    /// the max of the two (§3.C: "the calculation of the OBCs with FEAST
    /// is completely hidden by the solution of Eq. 5").
    pub fn feast_splitsolve_seconds(
        &self,
        dev: &PaperDevice,
        n_nodes: usize,
        hermitian: bool,
    ) -> f64 {
        let gpu_t = self.splitsolve_seconds(dev, n_nodes * self.machine.gpus_per_node, hermitian);
        let cpu_t = self.feast_seconds(dev, n_nodes);
        gpu_t.max(cpu_t)
    }

    /// MUMPS-like sparse direct solve per energy point: full BTD
    /// factorization + solve on the CPUs at the (poor) sustained fraction
    /// of a multifrontal code on banded problems.
    pub fn mumps_seconds(&self, dev: &PaperDevice, n_nodes: usize) -> f64 {
        let s = dev.block_size() as f64;
        let nb = dev.num_blocks() as f64;
        let m = dev.nrhs as f64;
        // Block Thomas: one LU + two GEMMs per block + RHS sweeps, with
        // multifrontal fill overhead on the DFT-dense band (factor ~3).
        let fill_overhead = 3.0;
        let arith = if dev.real_symmetric { 0.25 } else { 1.0 };
        let flops = arith
            * (fill_overhead * nb * (8.0 / 3.0 * s * s * s + 2.0 * 8.0 * s * s * s)
                + nb * 8.0 * s * s * m);
        let rate = self.machine.cpu_gflops_per_node * 1e9 * self.mumps_efficiency * n_nodes as f64;
        flops / rate + self.point_overhead_seconds
    }

    /// Shift-and-invert OBC per energy point (ref. [38]): dense
    /// factorization and eigendecomposition of the `NBC`-sized companion,
    /// essentially sequential across nodes.
    pub fn shift_invert_seconds(&self, dev: &PaperDevice) -> f64 {
        let nbc = dev.nbc() as f64;
        // Dense generalized eigensolve (zggev-grade, ~60·n³ complex
        // operations = 480·n³ real flops) — lead modes are complex even
        // for real-symmetric device matrices.
        let flops = 480.0 * nbc * nbc * nbc;
        let rate = self.machine.cpu_gflops_per_node
            * 1e9
            * self.machine.cpu_efficiency
            * self.shift_invert_nodes;
        flops / rate
    }

    /// Total FLOPs per energy point (OBC + Eq. 5), the §5.B accounting
    /// unit (≈ 241 TFLOPs for the UTBFET, 11 on the CPUs + 230 on GPUs).
    pub fn flops_per_point(&self, dev: &PaperDevice, hermitian: bool) -> f64 {
        let (g, s) = if hermitian {
            self.splitsolve_flops_hermitian(dev, 2)
        } else {
            self.splitsolve_flops(dev, 2)
        };
        g + s + self.feast_flops(dev)
    }
}

/// Soft-deadline estimator for the energy-point scheduler in `qtx-core`.
///
/// §5.B: "the number of floating point operations (FLOPs) involved in
/// SplitSolve is deterministic and can be accurately estimated" — so a
/// point that blows far past its FLOP-derived budget is a *detectable
/// anomaly* (straggler), not noise. The model converts the per-point
/// SplitSolve ledger (the dominant cost) into milliseconds at a sustained
/// local rate, multiplies in a generous slack factor, and clamps to a
/// configurable floor so tiny test devices never flag scheduling jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineModel {
    /// Sustained local compute rate (GFLOP/s) used to convert the ledger.
    pub sustained_gflops: f64,
    /// Minimum deadline (ms): below this, timing is all jitter.
    pub floor_ms: f64,
    /// Multiplier on the estimate — escalation rungs re-run the solve, so
    /// the budget must cover several ladder walks, not one.
    pub slack: f64,
}

impl Default for DeadlineModel {
    fn default() -> Self {
        DeadlineModel { sustained_gflops: 5.0, floor_ms: 250.0, slack: 8.0 }
    }
}

impl DeadlineModel {
    /// Single-partition SplitSolve FLOPs for raw matrix dimensions
    /// (`block_size` × `num_blocks` blocks, `nrhs` injected columns) —
    /// the same Algorithm 1 + post-processing + factorization terms as
    /// [`PerfModel::splitsolve_flops`] at `partitions = 1` for a complex
    /// device (a test pins the two ledgers together).
    pub fn point_flops(block_size: usize, num_blocks: usize, nrhs: usize) -> f64 {
        let s = block_size as f64;
        let nb = num_blocks as f64;
        let m = nrhs as f64;
        let alg1_gemm = 2.0 * 2.0 * 8.0 * s * s * s;
        let post_gemm = 8.0 * s * (2.0 * s) * m;
        let solve = 2.0 * (8.0 / 3.0 * s * s * s + 8.0 * s * s * s);
        nb * (alg1_gemm + post_gemm + solve)
    }

    /// Soft deadline (ms) for one energy point of the given dimensions.
    pub fn soft_deadline_ms(&self, block_size: usize, num_blocks: usize, nrhs: usize) -> f64 {
        let est_ms = Self::point_flops(block_size, num_blocks, nrhs)
            / (self.sustained_gflops.max(1e-9) * 1e6);
        (est_ms * self.slack).max(self.floor_ms)
    }

    /// Points per factorization-sharing scheduler task for the sweep's
    /// batched mode: how many neighboring energy points of this structure
    /// fit into one deadline floor at the sustained rate. Small systems
    /// (estimate ≪ floor) batch up to [`MAX_BATCH_POINTS`] so one task
    /// amortizes the warm workspace pool and Σ-cache anchors across its
    /// chunk; a paper-scale block already fills the floor alone and gets
    /// one point per task.
    pub fn batch_points(&self, block_size: usize, num_blocks: usize, nrhs: usize) -> usize {
        let est_ms = Self::point_flops(block_size, num_blocks, nrhs)
            / (self.sustained_gflops.max(1e-9) * 1e6);
        ((self.floor_ms / est_ms.max(1e-9)) as usize).clamp(1, MAX_BATCH_POINTS)
    }
}

/// Ceiling of [`DeadlineModel::batch_points`]: past this, a chunk stops
/// amortizing anything and only coarsens the scheduler's stealing/retry
/// granularity.
pub const MAX_BATCH_POINTS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_reproduce_nss() {
        let utb = PaperDevice::utbfet_23040();
        assert_eq!(utb.nss(), 276_480);
        let nw = PaperDevice::nwfet_55488();
        assert_eq!(nw.nss(), 665_856);
    }

    #[test]
    fn utbfet_flops_per_point_near_241_tflops() {
        // §5.B: 241 TFLOPs per energy point, 11 CPU + 230 GPU.
        let m = PerfModel::titan();
        let dev = PaperDevice::utbfet_23040();
        let total = m.flops_per_point(&dev, false) / 1e12;
        assert!((180.0..300.0).contains(&total), "per-point TFLOPs {total} vs paper 241");
        let feast = m.feast_flops(&dev) / 1e12;
        assert!(feast < 0.15 * total, "OBC share {feast} of {total} (paper: 5%)");
    }

    #[test]
    fn hermitian_variant_saves_about_five_percent() {
        // §5.E: 241 → 228 TFLOPs (−5.4%).
        let m = PerfModel::titan();
        let dev = PaperDevice::utbfet_23040();
        let full = m.flops_per_point(&dev, false);
        let herm = m.flops_per_point(&dev, true);
        let saving = 1.0 - herm / full;
        assert!((0.02..0.10).contains(&saving), "saving {saving}");
    }

    #[test]
    fn nwfet_on_16_nodes_near_102_seconds() {
        // §5.C: "the computational time per energy point for this nanowire
        // reduces to 102 sec with FEAST+SplitSolve using 16 hybrid nodes".
        let m = PerfModel::titan();
        let dev = PaperDevice::nwfet_55488();
        let t = m.feast_splitsolve_seconds(&dev, 16, false);
        assert!((60.0..160.0).contains(&t), "NWFET time/E {t} vs paper 102 s");
    }

    #[test]
    fn feast_is_hidden_behind_splitsolve() {
        let m = PerfModel::titan();
        let dev = PaperDevice::utbfet_23040();
        let cpu = m.feast_seconds(&dev, 4);
        let gpu = m.splitsolve_seconds(&dev, 4, false);
        assert!(cpu < gpu, "OBC {cpu} s must hide behind SplitSolve {gpu} s");
    }

    #[test]
    fn deadline_ledger_matches_splitsolve_flops_at_one_partition() {
        // Same formula, different entry point: for a complex device the
        // dimension-based deadline ledger must equal the PerfModel's
        // splitsolve terms at partitions = 1 (no SPIKE levels).
        let m = PerfModel::titan();
        let dev = PaperDevice::utbfet_23040();
        let (gemm, solve) = m.splitsolve_flops(&dev, 1);
        let deadline = DeadlineModel::point_flops(dev.block_size(), dev.num_blocks(), dev.nrhs);
        let rel = ((gemm + solve) - deadline).abs() / (gemm + solve);
        assert!(rel < 1e-12, "ledgers diverged by {rel}");
    }

    #[test]
    fn deadline_floor_and_scaling() {
        let dm = DeadlineModel::default();
        // A tiny test device hits the floor.
        assert_eq!(dm.soft_deadline_ms(8, 3, 8), dm.floor_ms);
        // A paper-scale block is far above it and scales with the dims.
        let big = dm.soft_deadline_ms(3840, 72, 64);
        assert!(big > dm.floor_ms * 100.0, "paper-scale deadline {big} ms too small");
        assert!(dm.soft_deadline_ms(3840, 144, 64) > 1.9 * big);
    }

    #[test]
    fn batch_points_scale_with_structure() {
        let dm = DeadlineModel::default();
        // Tiny test structures batch up to the cap.
        assert_eq!(dm.batch_points(8, 3, 8), MAX_BATCH_POINTS);
        // Paper-scale structures fill the floor alone: one point per task.
        assert_eq!(dm.batch_points(3840, 72, 64), 1);
        // Monotone: larger structures never batch more.
        assert!(dm.batch_points(128, 16, 128) >= dm.batch_points(512, 16, 512));
        assert!(dm.batch_points(512, 16, 512) >= 1);
    }

    #[test]
    fn memory_rule_minimum_gpus() {
        // §3.C: choose the minimum number of GPUs that can accommodate the
        // structure; the 55 488-atom NW needed 16 GPUs.
        let dev = PaperDevice::nwfet_55488();
        let per_gpu = 6.0 * 1024f64.powi(3);
        let needed = (dev.memory_bytes() as f64 / per_gpu).ceil() as usize;
        assert!((10..=24).contains(&needed), "NW needs {needed} GPUs (paper used 16)");
    }
}
