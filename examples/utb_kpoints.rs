//! Ultra-thin-body FET with a transverse momentum sweep: the 2-D device
//! of Fig. 1(c), periodic out-of-plane, solved with the three-level
//! (k, E, domain) parallelization of Fig. 9 over simulated MPI ranks.
//!
//! Run with: `cargo run --release --example utb_kpoints`

use qtx::core::{parallel_sweep, SweepPlan};
use qtx::prelude::*;

fn main() {
    let spec = DeviceBuilder::utb(0.8).cells(8).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");
    dev.config.n_kz = 5; // transverse momentum line (paper runs used 21)
    let dk = dev.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
    dev.config.mu_l = edge + 0.15;
    dev.config.mu_r = edge + 0.10;

    let plan = SweepPlan::from_device(&dev, 0.02, 0.06);
    println!("momentum points: {}", plan.k_points.len());
    println!("total energy points: {}", plan.total_points());
    let n_ranks = 8;
    println!("rank allocation over {n_ranks} ranks: {:?}", plan.allocate_ranks(n_ranks));

    let result = parallel_sweep(&dev, &plan, n_ranks).expect("sweep");
    println!("\nk-summed transmission spectrum:");
    println!("{:>10} {:>12}", "E (eV)", "Σ_k w_k T");
    for (e, t) in result.spectrum.iter().step_by((result.spectrum.len() / 20).max(1)) {
        let bar: String = std::iter::repeat_n('#', (t * 3.0) as usize).collect();
        println!("{e:>10.3} {t:>12.4}  {bar}");
    }
    println!("\nvirtual communication time: {:.3} ms", result.comm_seconds * 1e3);
}
