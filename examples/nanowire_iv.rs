//! Gate-all-around nanowire FET: self-consistent Schrödinger–Poisson
//! Id–Vgs transfer characteristic (the Fig. 1(d) workflow on a nanowire).
//!
//! Run with: `cargo run --release --example nanowire_iv`

use qtx::core::{id_vgs, ScfConfig};
use qtx::prelude::*;

fn main() {
    let spec = DeviceBuilder::nanowire(0.8).cells(10).basis(BasisKind::TightBinding).build();
    let mut dev = Device::build(spec).expect("device");

    // n-type contacts: Fermi level slightly above the lowest subband.
    let dk = dev.at_kz(0.0);
    let edge = dk.lead_l.dispersive_band_min(0.1, 0.3).expect("conduction edge");
    dev.config.mu_l = edge + 0.05;
    println!("conduction edge at {edge:.3} eV; contacts at µ = {:.3} eV", dev.config.mu_l);

    let cfg = ScfConfig {
        max_iter: 10,
        n_energy: 24,
        vd: 0.05,
        gate_window: (0.3, 0.7),
        ..ScfConfig::default()
    };
    let vgs: Vec<f64> = (0..8).map(|i| -0.40 + i as f64 * 0.08).collect();
    let iv = id_vgs(&mut dev, &cfg, &vgs).expect("sweep");

    println!("\n{:>10} {:>14} {:>10}", "Vgs (V)", "Id (µA)", "log10 Id");
    for p in &iv {
        println!("{:>10.2} {:>14.5} {:>10.2}", p.vgs, p.id_ua, p.id_ua.max(1e-12).log10());
    }
    let on = iv.last().expect("points").id_ua;
    let off = iv.first().expect("points").id_ua;
    println!("\non/off ratio ≈ {:.0} over {:.2} V of gate swing", on / off.max(1e-12), 0.56);
}
