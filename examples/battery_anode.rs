//! Lithium-ion battery anode: lithiation of SnO and its impact on the
//! electronic conductivity (the Fig. 1(e)/(f) application).
//!
//! Run with: `cargo run --release --example battery_anode`

use qtx::atomistic::assemble::assemble_device;
use qtx::atomistic::battery::{lithiate, volume_expansion};
use qtx::atomistic::structure::SNO_LATTICE;
use qtx::core::device::DeviceK;
use qtx::core::engine::{PointPolicy, TransportEngine};
use qtx::core::TransportConfig;
use qtx::obc::{LeadBlocks, ObcMethod};
use qtx::prelude::*;

fn transmission_at_capacity(capacity: f64) -> (f64, usize) {
    let (slab, _report) = lithiate(10, 1, capacity, 0.4, 7);
    let dm = assemble_device(&slab, BasisKind::TightBinding, SNO_LATTICE).expect("assemble");
    let lead = LeadBlocks::new(
        dm.h.diag[0].clone(),
        dm.h.upper[0].clone(),
        dm.s.diag[0].clone(),
        dm.s.upper[0].clone(),
    );
    let e = lead.dispersive_energy(1.0, 0.2, 0.25).expect("conduction band");
    let dk = DeviceK { lead_l: lead.clone(), lead_r: lead, h: dm.h, s: dm.s, kz: 0.0 };
    let cfg = TransportConfig { obc: ObcMethod::ShiftInvert, ..TransportConfig::default() };
    let engine = TransportEngine::from_device_k(dk, cfg);
    let r = engine.solve_point(e, 0.0, &PointPolicy::direct()).into_result().expect("transport");
    (r.transmission, r.channels.0)
}

fn main() {
    println!("SnO anode lithiation (Li inserted in the central 40% of the slab)\n");
    println!("{:>14} {:>8} {:>10} {:>12}", "C (mAh/g)", "V/V0", "T(E)", "T/channels");
    for i in 0..6 {
        let c = i as f64 * 240.0;
        let (t, channels) = transmission_at_capacity(c);
        println!(
            "{c:>14.0} {:>8.3} {t:>10.4} {:>12.3}",
            volume_expansion(c),
            t / channels.max(1) as f64
        );
    }
    println!("\nAs lithiation converts the central region into wide-gap Li-oxide, the");
    println!("electronic current through it collapses — the paper's Fig. 1(f) message —");
    println!("while the electrode volume grows linearly with capacity (Fig. 1(e)).");
}
