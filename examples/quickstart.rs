//! Quickstart: build a silicon nanowire, generate its DFT-like matrices
//! with CP2K-lite, and compute a ballistic transmission spectrum with the
//! FEAST + SplitSolve production pipeline.
//!
//! Run with: `cargo run --release --example quickstart`

use qtx::prelude::*;

fn main() {
    // 1. Geometry: a gate-all-around Si nanowire, 0.8 nm in diameter,
    //    8 unit cells long, in the nearest-neighbour tight-binding basis.
    let spec = DeviceBuilder::nanowire(0.8).cells(8).basis(BasisKind::TightBinding).build();
    println!("structure: {} ({} atoms/cell)", spec.unit_cell.label, spec.unit_cell.len());

    // 2. CP2K-lite: self-consistent charge loop + matrix generation happen
    //    inside Device::build (see `qtx::cp2k` for the explicit workflow).
    let device = Device::build(spec).expect("matrix generation");
    println!(
        "device: N_SS = {} ({} slabs of {} orbitals)",
        device.n_ss(),
        device.n_slabs,
        device.block_size()
    );

    // 3. Transmission spectrum over the conduction band.
    let dk = device.at_kz(0.0);
    let (lo, hi) = dk.lead_l.band_window(32);
    println!("lead bands span [{lo:.2}, {hi:.2}] eV\n");
    println!("{:>10} {:>12}", "E (eV)", "T(E)");
    for i in 0..25 {
        let e = lo + (hi - lo) * i as f64 / 24.0;
        let t = transmission(&device, e).map(|r| r.transmission).unwrap_or(0.0);
        // Quantize to the printed precision before sizing the bar, so a
        // sub-display rounding difference (e.g. T = 1 ± 1e-10 between
        // kernel variants) cannot flip the bar length in A/B diffs.
        let tq = (t * 1e4).round() / 1e4;
        let bar: String = std::iter::repeat_n('#', (tq * 4.0).round() as usize).collect();
        println!("{e:>10.3} {t:>12.4}  {bar}");
    }
    println!("\nInteger plateaus = conduction channels; zero plateau = the band gap.");
}
