//! # qtx — ab-initio quantum transport on (simulated) hybrid supercomputers
//!
//! `qtx` is an open, from-scratch Rust reproduction of the SC'15 paper
//! *"Pushing Back the Limit of Ab-initio Quantum Transport Simulations on
//! Hybrid Supercomputers"* (Calderara et al., ETH Zürich). It couples a
//! CP2K-like density-functional substrate with an OMEN-like quantum
//! transport driver and implements the paper's two algorithmic
//! contributions:
//!
//! * **FEAST-based open boundary conditions** — contour-integration
//!   eigensolver restricted to an annulus around `|λ| = 1`, replacing
//!   shift-and-invert for the lead-mode polynomial eigenvalue problem
//!   ([`qtx_obc`]).
//! * **SplitSolve** — a multi-accelerator block-tridiagonal solver built
//!   from a recursive-Green's-function block-column inversion, SPIKE-style
//!   recursive partition merging and Sherman–Morrison–Woodbury
//!   post-processing, overlapping the boundary-condition computation (CPU)
//!   with the Schrödinger solve (GPU) ([`qtx_solver`]).
//!
//! The facade re-exports every sub-crate; see `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduced tables and figures.
//!
//! ## Quickstart
//!
//! ```
//! use qtx::prelude::*;
//!
//! // A small silicon nanowire in the tight-binding basis.
//! let spec = DeviceBuilder::nanowire(0.8)
//!     .cells(6)
//!     .basis(BasisKind::TightBinding)
//!     .build();
//! let device = Device::build(spec).expect("CP2K-lite matrix generation");
//! // Ballistic transmission at one energy (eV).
//! let point = transmission(&device, 2.0).expect("transport solve");
//! assert!(point.transmission >= -1e-9);
//! ```

pub use qtx_accel as accel;
pub use qtx_atomistic as atomistic;
pub use qtx_core as core;
pub use qtx_cp2k as cp2k;
pub use qtx_linalg as linalg;
pub use qtx_machine as machine;
pub use qtx_mpi as mpi;
pub use qtx_obc as obc;
pub use qtx_poisson as poisson;
pub use qtx_solver as solver;
pub use qtx_sparse as sparse;

/// Commonly used items for downstream applications and the bundled examples.
pub mod prelude {
    pub use qtx_atomistic::{BasisKind, DeviceBuilder, Species, Structure};
    pub use qtx_core::{
        schrodinger_poisson, transmission, Device, EnergyGrid, PointPolicy, ScfConfig,
        TransportConfig, TransportEngine,
    };
    pub use qtx_cp2k::{Cp2kRun, Functional, HsFile};
    pub use qtx_linalg::{Complex64, ZMat};
    pub use qtx_obc::{ObcMethod, ObcResult, Side};
    pub use qtx_solver::{SolverKind, SplitSolve};
}
